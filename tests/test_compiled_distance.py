"""Equivalence suite for the compiled distance engine.

The flat BFS kernel and :class:`CompiledDistanceMatrix` must be
bit-for-bit / set-for-set identical to the dict-based BFS of
:class:`DataGraph` and the legacy :class:`DistanceMatrix` on arbitrary
digraphs — including the nonempty-path corner cases (self-loops, cycles,
``bound`` of ``None``/``0``/``k``) and the stale-snapshot fallback.
"""

from __future__ import annotations

import random

import pytest

from repro.distance.bfs import BFSDistanceOracle
from repro.distance.compiled import CompiledDistanceMatrix, FlatBFSKernel
from repro.distance.incremental import build_store
from repro.distance.matrix import DistanceMatrix, InternedDistanceStore
from repro.distance.oracle import INF, BoundedBitsCache
from repro.exceptions import DistanceOracleError
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph, scale_free_graph
from repro.graph.pattern_generator import PatternGenerator
from repro.matching.bounded import (
    candidate_bits,
    candidate_sets,
    match,
    refine_bits_to_fixpoint,
    refine_to_fixpoint,
)

BOUNDS = [None, 0, 1, 2, 3]


def _random_digraph(seed: int, num_nodes: int = 24, num_edges: int = 60) -> DataGraph:
    graph = random_data_graph(num_nodes, num_edges, seed=seed)
    rng = random.Random(seed)
    # Sprinkle self-loops and short cycles — the nonempty-path corner cases.
    nodes = list(graph.nodes())
    for node in rng.sample(nodes, 3):
        graph.add_edge(node, node, strict=False)
    for _ in range(3):
        a, b = rng.sample(nodes, 2)
        graph.add_edge(a, b, strict=False)
        graph.add_edge(b, a, strict=False)
    return graph


@pytest.fixture(scope="module", params=[11, 22, 33])
def graph(request):
    return _random_digraph(request.param)


class TestFlatKernel:
    def test_ball_bits_match_dict_bfs(self, graph):
        compiled = compile_graph(graph)
        kernel = compiled.flat_kernel()
        for node in graph.nodes():
            index = compiled.id_of(node)
            for bound in BOUNDS:
                forward = compiled.decode(kernel.ball_bits(index, bound))
                assert forward == graph.descendants_within(node, bound), (node, bound)
                backward = compiled.decode(kernel.ball_bits(index, bound, reverse=True))
                assert backward == graph.ancestors_within(node, bound), (node, bound)

    def test_distance_row_matches_dict_bfs(self, graph):
        compiled = compile_graph(graph)
        kernel = compiled.flat_kernel()
        for node in graph.nodes():
            row = kernel.distance_row(compiled.id_of(node))
            reference = graph.bfs_distances(node)
            for other in graph.nodes():
                expected = reference.get(other, -1)
                assert row[compiled.id_of(other)] == expected, (node, other)

    def test_reverse_distance_row(self, graph):
        compiled = compile_graph(graph)
        kernel = compiled.flat_kernel()
        for node in list(graph.nodes())[:6]:
            column = kernel.distance_row(compiled.id_of(node), reverse=True)
            reference = graph.bfs_distances(node, reverse=True)
            for other in graph.nodes():
                assert column[compiled.id_of(other)] == reference.get(other, -1)

    def test_sparse_distances_match(self, graph):
        compiled = compile_graph(graph)
        kernel = compiled.flat_kernel()
        for node in graph.nodes():
            sparse = kernel.sparse_distances(compiled.id_of(node))
            reference = {
                compiled.id_of(n): d for n, d in graph.bfs_distances(node).items()
            }
            assert sparse == reference

    def test_adjacency_decode_is_reused_across_calls(self, graph):
        compiled = compile_graph(graph)
        kernel = compiled.flat_kernel()
        kernel.distance_row(0)
        tuples_before = kernel._fwd_tuples
        assert tuples_before is not None
        for node in list(graph.nodes())[:5]:
            kernel.sparse_distances(compiled.id_of(node))
        # The decoded CSR is shared across searches at a fixed version.
        assert kernel._fwd_tuples is tuples_before

    def test_adjacency_decode_invalidated_by_version_bump(self, graph):
        compiled = compile_graph(graph)
        kernel = compiled.flat_kernel()
        kernel.distance_row(0)
        tuples_before = kernel._fwd_tuples
        graph.add_node("bump-marker")
        compiled.intern_node("bump-marker", {})
        kernel.distance_row(0)
        assert kernel._fwd_tuples is not tuples_before
        graph.remove_node("bump-marker")

    def test_shared_kernel_per_snapshot(self, graph):
        compiled = compile_graph(graph)
        assert compiled.flat_kernel() is compiled.flat_kernel()

    def test_kernel_follows_patch_overlay(self):
        graph = _random_digraph(5)
        matrix = DistanceMatrix(graph)  # pins distances for the store
        compiled = compile_graph(graph)
        nodes = list(graph.nodes())
        source, target = nodes[0], nodes[7]
        if not graph.has_edge(source, target):
            graph.add_edge(source, target)
            compiled.patch_edge_insert(source, target)
        kernel = compiled.flat_kernel()
        for bound in BOUNDS:
            got = compiled.decode(kernel.ball_bits(compiled.id_of(source), bound))
            assert got == graph.descendants_within(source, bound), bound

    def test_kernel_grows_with_interned_nodes(self):
        graph = _random_digraph(6)
        compiled = compile_graph(graph)
        kernel = compiled.flat_kernel()
        kernel.ball_bits(0, 2)  # size the buffers before the graph grows
        graph.add_node("fresh")
        compiled.intern_node("fresh", {})
        graph.add_edge("fresh", list(graph.nodes())[0])
        compiled.patch_edge_insert("fresh", list(graph.nodes())[0])
        index = compiled.id_of("fresh")
        got = compiled.decode(kernel.ball_bits(index, None))
        assert got == graph.descendants_within("fresh", None)


class TestCompiledDistanceMatrix:
    def test_distances_agree_with_matrix(self, graph):
        legacy = DistanceMatrix(graph)
        oracle = CompiledDistanceMatrix(graph)
        for source in graph.nodes():
            for target in graph.nodes():
                assert oracle.distance(source, target) == legacy.distance(
                    source, target
                ), (source, target)

    def test_balls_agree_with_matrix(self, graph):
        legacy = DistanceMatrix(graph)
        oracle = CompiledDistanceMatrix(graph)
        for node in graph.nodes():
            for bound in BOUNDS:
                assert oracle.descendants_within(node, bound) == legacy.descendants_within(node, bound)
                assert oracle.ancestors_within(node, bound) == legacy.ancestors_within(node, bound)

    def test_nonempty_distance_and_within(self, graph):
        legacy = DistanceMatrix(graph)
        oracle = CompiledDistanceMatrix(graph)
        for node in graph.nodes():
            assert oracle.nonempty_distance(node, node) == legacy.nonempty_distance(node, node)
        a, b = list(graph.nodes())[:2]
        for bound in BOUNDS:
            assert oracle.within(a, b, bound) == legacy.within(a, b, bound)

    def test_bits_agree_with_matrix_bits(self, graph):
        legacy = DistanceMatrix(graph)
        oracle = CompiledDistanceMatrix(graph)
        compiled = compile_graph(graph)
        for node in graph.nodes():
            index = compiled.id_of(node)
            for bound in BOUNDS:
                assert oracle.descendants_within_bits(
                    compiled, index, bound
                ) == legacy.descendants_within_bits(compiled, index, bound)
                assert oracle.ancestors_within_bits(
                    compiled, index, bound
                ) == legacy.ancestors_within_bits(compiled, index, bound)

    def test_unknown_source_raises_unknown_target_is_inf(self, graph):
        oracle = CompiledDistanceMatrix(graph)
        with pytest.raises(DistanceOracleError):
            oracle.distance("ghost", list(graph.nodes())[0])
        assert oracle.distance(list(graph.nodes())[0], "ghost") == INF

    def test_refreshes_after_mutation(self):
        graph = _random_digraph(7)
        oracle = CompiledDistanceMatrix(graph)
        nodes = list(graph.nodes())
        source = nodes[0]
        oracle.descendants_within(source, 2)  # warm the caches
        assert oracle.in_sync
        target = next(n for n in nodes if not graph.has_edge(source, n) and n != source)
        graph.add_edge(source, target)
        assert not oracle.in_sync
        assert oracle.distance(source, target) == 1
        assert oracle.in_sync
        assert oracle.descendants_within(source, 1) == graph.descendants_within(source, 1)

    def test_stale_snapshot_falls_back(self):
        graph = _random_digraph(8)
        oracle = CompiledDistanceMatrix(graph)
        stale = CompiledGraph.from_graph(graph)
        nodes = list(graph.nodes())
        source = nodes[0]
        target = next(n for n in nodes if not graph.has_edge(source, n) and n != source)
        graph.add_edge(source, target)
        # `stale` was compiled one version ago; the oracle must answer about
        # the *current* graph, encoded in the stale snapshot's id space.
        index = stale.id_of(source)
        got = oracle.descendants_within_bits(stale, index, 1)
        assert got == stale.encode(graph.descendants_within(source, 1))
        got_anc = oracle.ancestors_within_bits(stale, stale.id_of(target), 1)
        assert got_anc == stale.encode(graph.ancestors_within(target, 1))

    def test_foreign_current_snapshot_answers_in_its_id_space(self, graph):
        oracle = CompiledDistanceMatrix(graph)
        other = CompiledGraph.from_graph(graph)  # same graph/version, not pinned
        assert other is not oracle.snapshot
        node = list(graph.nodes())[0]
        index = other.id_of(node)
        assert other.decode(
            oracle.descendants_within_bits(other, index, 2)
        ) == graph.descendants_within(node, 2)

    def test_row_lru_eviction_keeps_answers_correct(self):
        graph = _random_digraph(9)
        legacy = DistanceMatrix(graph)
        oracle = CompiledDistanceMatrix(graph, max_rows=4)
        for source in graph.nodes():
            for target in list(graph.nodes())[:5]:
                assert oracle.distance(source, target) == legacy.distance(source, target)
        assert oracle.cached_vectors() <= 4

    def test_bits_lru_is_bounded(self):
        graph = _random_digraph(10)
        oracle = CompiledDistanceMatrix(graph, bits_cache_size=8)
        for node in graph.nodes():
            for bound in BOUNDS:
                oracle.descendants_within(node, bound)
        assert len(oracle._bits_lru) <= 8

    def test_column_is_on_demand_reverse_bfs(self, graph):
        oracle = CompiledDistanceMatrix(graph)
        node = list(graph.nodes())[0]
        column = oracle.column_array(node)
        reference = graph.bfs_distances(node, reverse=True)
        compiled = oracle.snapshot
        for other in graph.nodes():
            assert column[compiled.id_of(other)] == reference.get(other, -1)

    def test_match_default_oracle_equals_legacy(self, graph):
        generator = PatternGenerator(graph, seed=3)
        for spec_seed in range(3):
            pattern = generator.generate(4, 4, 3)
            compiled_result = match(pattern, graph)  # default: CompiledDistanceMatrix
            legacy_result = match(
                pattern, graph, DistanceMatrix(graph), use_compiled=False
            )
            assert compiled_result == legacy_result


class TestStoreHandoff:
    def test_build_store_equals_from_matrix(self, graph):
        matrix = DistanceMatrix(graph)
        compiled = compile_graph(graph)
        via_kernel = build_store(compiled)
        via_matrix = InternedDistanceStore.from_matrix(matrix, compiled)
        assert via_kernel.rows == via_matrix.rows
        assert via_kernel.cols == via_matrix.cols

    def test_to_store_roundtrip(self, graph):
        oracle = CompiledDistanceMatrix(graph)
        store = oracle.to_store()
        compiled = oracle.snapshot
        for source in graph.nodes():
            i = compiled.id_of(source)
            for target in graph.nodes():
                j = compiled.id_of(target)
                assert store.distance(i, j) == oracle.distance(source, target)


class TestWorklistRefinement:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_legacy_refinement(self, seed):
        graph = _random_digraph(seed * 7, num_nodes=20, num_edges=45)
        generator = PatternGenerator(graph, seed=seed)
        pattern = generator.generate(4, 5, 2)
        matrix = DistanceMatrix(graph)
        compiled = compile_graph(graph)

        mat_sets = candidate_sets(pattern, graph)
        removed_sets = refine_to_fixpoint(pattern, matrix, mat_sets)

        mat_bits = candidate_bits(pattern, compiled)
        removed_bits = refine_bits_to_fixpoint(pattern, matrix, compiled, mat_bits)

        decoded = {u: compiled.decode(bits) for u, bits in mat_bits.items()}
        assert decoded == mat_sets
        assert {
            (u, compiled.node_of(v)) for u, v in removed_bits
        } == removed_sets

    def test_stop_when_empty_still_yields_empty_match(self):
        # An unsatisfiable pattern: the early exit may leave mat_bits partial,
        # but some set must be empty so the match wrappers return empty.
        graph = _random_digraph(17, num_nodes=18, num_edges=40)
        generator = PatternGenerator(graph, seed=17)
        pattern = generator.generate(4, 4, 1)
        # Make one pattern node unsatisfiable-after-refinement: bound-1 edge
        # to a node whose predicate nothing satisfies is caught upfront, so
        # instead compare against the full fixpoint on real patterns.
        compiled = compile_graph(graph)
        mat_full = candidate_bits(pattern, compiled)
        refine_bits_to_fixpoint(pattern, DistanceMatrix(graph), compiled, mat_full)
        mat_early = candidate_bits(pattern, compiled)
        refine_bits_to_fixpoint(
            pattern, DistanceMatrix(graph), compiled, mat_early, stop_when_empty=True
        )
        if any(not bits for bits in mat_full.values()):
            assert any(not bits for bits in mat_early.values())
        else:
            # No set ever empties: early-exit mode must be the exact fixpoint.
            assert mat_early == mat_full

    @pytest.mark.parametrize("oracle_cls", [DistanceMatrix, BFSDistanceOracle, CompiledDistanceMatrix])
    def test_all_oracles_reach_same_fixpoint(self, graph, oracle_cls):
        generator = PatternGenerator(graph, seed=13)
        pattern = generator.generate(5, 6, 3)
        compiled = compile_graph(graph)
        reference = candidate_bits(pattern, compiled)
        refine_bits_to_fixpoint(pattern, DistanceMatrix(graph), compiled, reference)
        mat_bits = candidate_bits(pattern, compiled)
        refine_bits_to_fixpoint(pattern, oracle_cls(graph), compiled, mat_bits)
        assert mat_bits == reference


class TestEdgeCases:
    def test_single_node_graph(self):
        graph = DataGraph()
        graph.add_node("only")
        oracle = CompiledDistanceMatrix(graph)
        assert oracle.distance("only", "only") == 0
        assert oracle.descendants_within("only", None) == set()
        graph.add_edge("only", "only")
        assert oracle.descendants_within("only", 1) == {"only"}

    def test_disconnected_nodes(self):
        graph = DataGraph()
        for name in ("a", "b", "c"):
            graph.add_node(name)
        oracle = CompiledDistanceMatrix(graph)
        assert oracle.distance("a", "b") == INF
        assert oracle.descendants_within("a", None) == set()
        assert oracle.ancestors_within("b", 3) == set()

    def test_scale_free_graph_agreement(self):
        graph = scale_free_graph(40, out_degree=3, seed=3)
        legacy = DistanceMatrix(graph)
        oracle = CompiledDistanceMatrix(graph)
        for node in list(graph.nodes())[::4]:
            for bound in (1, 3, None):
                assert oracle.descendants_within(node, bound) == legacy.descendants_within(node, bound)


class TestBoundedBitsCache:
    def test_lru_eviction_order(self):
        cache = BoundedBitsCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' becomes the LRU entry
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_zero_bits_is_a_valid_entry(self):
        cache = BoundedBitsCache(4)
        cache.put("empty", 0)
        assert cache.get("empty") == 0
        assert "empty" in cache

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            BoundedBitsCache(0)
