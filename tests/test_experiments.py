"""Smoke tests for the experiment drivers (run at tiny scales).

These verify that every figure/table driver produces well-formed rows and
that the qualitative invariants the paper reports hold at reduced scale
(e.g. the incremental and batch algorithms agree, Match finds at least as
many matches as VF2).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    appendix_statistics_experiment,
    bound_sweep_experiment,
    dataset_table_experiment,
    incremental_deletions_experiment,
    incremental_insertions_experiment,
    match_vs_vf2_experiment,
    real_life_efficiency_experiment,
    result_graph_experiment,
    run_experiment,
    synthetic_scalability_experiment,
    varying_edges_experiment,
)
from repro.experiments.harness import ExperimentRecord, average, timed
from repro.experiments.reporting import Table, format_value, save_rows_json


class TestHarness:
    def test_timed_returns_result_and_duration(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0

    def test_average(self):
        assert average([1, 2, 3]) == 2
        assert average([]) == 0.0

    def test_record_table_rendering(self):
        record = ExperimentRecord(
            experiment="x", title="t", paper_expectation="exp", notes="n"
        )
        record.add_row(a=1, b=2.5)
        rendered = record.to_table().render()
        assert "x: t" in rendered
        assert "exp" in rendered
        assert "2.500" in rendered

    def test_run_experiment_quiet(self):
        record = run_experiment(dataset_table_experiment, scale=0.01, quiet=True)
        assert isinstance(record, ExperimentRecord)


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "-"
        assert format_value(0.1234) == "0.123"
        assert format_value(123.456) == "123.5"
        assert format_value("text") == "text"

    def test_table_renders_all_rows(self):
        table = Table("demo", note="note")
        table.add_row({"a": 1})
        table.add_row({"a": 2, "b": 3})
        rendered = table.render()
        assert "demo" in rendered and "note" in rendered
        assert len(table) == 2
        assert table.columns == ["a", "b"]

    def test_save_rows_json(self, tmp_path):
        path = tmp_path / "rows.json"
        save_rows_json([{"a": 1}], path)
        assert path.read_text().strip().startswith("[")


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {
            "table-datasets", "fig6a", "exp1-subiso", "fig6b-6c", "fig6d",
            "fig6e", "fig6fgh", "fig6i", "fig6j", "fig6k", "fig9", "appendix-stats",
        }
        assert set(ALL_EXPERIMENTS) == expected


class TestDatasetTable:
    def test_rows_cover_all_datasets(self):
        record = dataset_table_experiment(scale=0.02)
        assert {row["dataset"] for row in record.rows} == {"YouTube", "Matter", "PBlog"}
        for row in record.rows:
            assert row["generated_nodes"] > 0
            assert row["generated_edges"] > 0


class TestEffectivenessDrivers:
    def test_result_graph_rows(self):
        record = result_graph_experiment(scale=0.05, seed=7)
        assert len(record.rows) == 3
        matched_rows = [row for row in record.rows if row["matched"]]
        assert matched_rows, "at least one sample pattern should match"
        for row in matched_rows:
            assert row["result_nodes"] > 0
            assert row["avg_matches_per_node"] >= 1

    def test_match_vs_vf2_invariant(self):
        record = match_vs_vf2_experiment(
            scale=0.02, seed=7, specs=((3, 3, 3), (4, 4, 3)), patterns_per_spec=2
        )
        assert len(record.rows) == 2
        for row in record.rows:
            # Bounded simulation never finds fewer match pairs than subgraph
            # isomorphism does (every embedding is contained in the maximum match).
            assert row["match_matches"] >= row["vf2_matches"]
            assert row["match_total_s"] >= row["match_process_s"]

    def test_varying_edges_monotone_difficulty(self):
        record = varying_edges_experiment(
            num_nodes=300, num_edges=600, num_labels=30,
            pattern_sizes=(4,), max_extra_edges=4, patterns_per_point=2, seed=5,
        )
        values = [row["P(4,E,9)"] for row in record.rows]
        # Adding pattern edges can only make matching harder on average.
        assert values[0] >= values[-1]

    def test_bound_sweep_monotone_in_k(self):
        record = bound_sweep_experiment(
            num_nodes=300, num_edges=600, num_labels=30,
            pattern_sizes=(4,), bounds=(2, 4, 8), patterns_per_point=2, seed=5,
        )
        values = [row["P(4,3,k)"] for row in record.rows]
        assert values == sorted(values)  # more hops -> at least as many matches


class TestEfficiencyDrivers:
    def test_real_life_rows(self):
        record = real_life_efficiency_experiment(
            scale=0.02, specs=((3, 3, 3),), patterns_per_spec=1,
            datasets=("PBlog",), variants=("Match", "BFS"),
        )
        assert len(record.rows) == 1
        row = record.rows[0]
        assert row["Match_ms"] >= 0
        assert "BFS_ms" in row

    def test_synthetic_scalability_rows(self):
        record = synthetic_scalability_experiment(
            num_nodes=200, edge_counts=(300,), pattern_sizes=(4, 5),
            patterns_per_point=1, variants=("Match", "BFS"), seed=3,
        )
        assert len(record.rows) == 2
        assert all("Match_ms" in row and "BFS_ms" in row for row in record.rows)


class TestIncrementalDrivers:
    def test_deletions_driver_agreement(self):
        record = incremental_deletions_experiment(scale=0.02, sizes=(5, 10))
        assert len(record.rows) == 2
        assert all(row["results_agree"] for row in record.rows)

    def test_insertions_driver_agreement(self):
        record = incremental_insertions_experiment(scale=0.02, sizes=(5,))
        assert all(row["results_agree"] for row in record.rows)

    def test_appendix_statistics(self):
        record = appendix_statistics_experiment(scale=0.02, num_patterns=2, num_insertions=5)
        assert len(record.rows) == 2
        assert record.rows[0]["avg_nodes"] >= 0
