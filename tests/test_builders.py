"""Tests for the paper's running examples (repro.graph.builders).

These are the paper's own correctness fixtures: Example 1.1 (drug
trafficking), Example 2.1/2.2 (social matching, research collaboration) and
their expected maximum matches.
"""

from __future__ import annotations

import pytest

from repro.graph.builders import (
    collaboration_graph,
    collaboration_graph_g3,
    collaboration_pattern,
    drug_trafficking_graph,
    drug_trafficking_pattern,
    paper_example_pairs,
    social_matching_pair,
)
from repro.matching.bounded import match, naive_match


class TestDrugTrafficking:
    def test_structure(self):
        pattern = drug_trafficking_pattern()
        graph = drug_trafficking_graph()
        assert pattern.number_of_nodes() == 4
        assert pattern.bound("AM", "FW") == 3
        assert pattern.bound("S", "FW") == 1
        assert graph.has_node("B")

    def test_expected_maximum_match(self):
        """Example 2.2: B -> B, AM -> A1..Am, S -> Am, FW -> all W nodes."""
        result = match(drug_trafficking_pattern(), drug_trafficking_graph(num_managers=3))
        assert result
        assert result.matches("B") == {"B"}
        assert result.matches("AM") == {"A1", "A2", "A3"}
        assert result.matches("S") == {"A3"}
        assert result.matches("FW") == {"W1", "W2", "W3", "W4", "W5", "W6"}

    def test_more_managers(self):
        result = match(drug_trafficking_pattern(), drug_trafficking_graph(num_managers=5))
        assert len(result.matches("AM")) == 5
        assert result.matches("S") == {"A5"}

    def test_minimum_managers_validated(self):
        with pytest.raises(ValueError):
            drug_trafficking_graph(num_managers=1)


class TestSocialMatching:
    def test_dual_role_node_matches_two_pattern_nodes(self):
        """Example 2.2(1): (HR, SE) matches both the SE and the HR pattern node."""
        pattern, graph = social_matching_pair()
        result = match(pattern, graph)
        assert result
        assert "HR_SE" in result.matches("SE")
        assert "HR_SE" in result.matches("HR")

    def test_one_pattern_node_maps_to_many(self):
        pattern, graph = social_matching_pair()
        result = match(pattern, graph)
        assert result.matches("DM") == {"DM_l", "DM_r"}

    def test_is_a_relation_not_a_function(self):
        pattern, graph = social_matching_pair()
        result = match(pattern, graph)
        assert len(result) > pattern.number_of_nodes()


class TestCollaboration:
    def test_expected_maximum_match(self):
        """Example 2.2(2): CS -> DB, Bio -> {Gen, Eco}, Med -> Med, Soc -> Soc."""
        result = match(collaboration_pattern(), collaboration_graph())
        assert result.matches("CS") == {"DB"}
        assert result.matches("Bio") == {"Gen", "Eco"}
        assert result.matches("Med") == {"Med"}
        assert result.matches("Soc") == {"Soc"}

    def test_ai_is_excluded(self):
        """AI satisfies the CS predicate but cannot satisfy the connectivity."""
        result = match(collaboration_pattern(), collaboration_graph())
        assert "AI" not in result.matches("CS")

    def test_g3_does_not_match(self):
        """Example 2.2(3): dropping (DB, Gen) breaks the match entirely."""
        result = match(collaboration_pattern(), collaboration_graph_g3())
        assert result.is_empty

    def test_g3_graph_differs_from_g2_by_one_edge(self):
        g2 = collaboration_graph()
        g3 = collaboration_graph_g3()
        assert g2.number_of_edges() - g3.number_of_edges() == 1
        assert g2.has_edge("DB", "Gen")
        assert not g3.has_edge("DB", "Gen")


class TestPaperExamplePairs:
    def test_all_expectations_hold(self):
        for name, pattern, graph, expects_match in paper_example_pairs():
            result = match(pattern, graph)
            assert bool(result) == expects_match, name

    def test_worklist_and_naive_agree_on_all_examples(self):
        for name, pattern, graph, _ in paper_example_pairs():
            assert match(pattern, graph) == naive_match(pattern, graph), name
