"""Unit tests for graph/pattern serialisation (repro.graph.io)."""

from __future__ import annotations

import pytest

from repro.exceptions import SerializationError
from repro.graph.datagraph import DataGraph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_graph_json,
    load_pattern_json,
    save_edge_list,
    save_graph_json,
    save_pattern_json,
)
from repro.graph.pattern import Pattern
from repro.graph.predicates import Predicate


class TestGraphJson:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph_json(tiny_graph, path)
        restored = load_graph_json(path)
        assert restored.number_of_nodes() == tiny_graph.number_of_nodes()
        assert set(restored.edges()) == set(tiny_graph.edges())
        assert restored.attributes("a") == tiny_graph.attributes("a")
        assert restored.name == "tiny"

    def test_dict_round_trip_without_files(self, tiny_graph):
        restored = graph_from_dict(graph_to_dict(tiny_graph))
        assert set(restored.edges()) == set(tiny_graph.edges())

    def test_tuple_node_ids_survive(self):
        graph = DataGraph()
        graph.add_node(("user", 1), label="A")
        graph.add_node(("user", 2), label="B")
        graph.add_edge(("user", 1), ("user", 2))
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.has_edge(("user", 1), ("user", 2))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_graph_json(path)

    def test_missing_key_raises(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"nodes": []})


class TestPatternJson:
    def test_round_trip(self, tmp_path):
        pattern = Pattern(name="P")
        pattern.add_node("CS", Predicate.equals("dept", "CS"))
        pattern.add_node("Bio", Predicate.equals("dept", "Bio"))
        pattern.add_edge("CS", "Bio", 2)
        path = tmp_path / "pattern.json"
        save_pattern_json(pattern, path)
        restored = load_pattern_json(path)
        assert restored.bound("CS", "Bio") == 2
        assert restored.predicate("Bio").evaluate({"dept": "Bio"})

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_pattern_json(path)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        graph = DataGraph(name="numbers")
        for index in range(4):
            graph.add_node(index)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        path = tmp_path / "edges.txt"
        save_edge_list(graph, path)
        restored = load_edge_list(path)
        assert set(restored.edges()) == set(graph.edges())

    def test_comments_and_attributes(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment line\n1 2\n2 3\n", encoding="utf-8")
        restored = load_edge_list(path, attributes={1: {"label": "A"}})
        assert restored.number_of_edges() == 2
        assert restored.attribute(1, "label") == "A"

    def test_string_node_ids(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob\nbob carol\n", encoding="utf-8")
        restored = load_edge_list(path, node_type=str)
        assert restored.has_edge("alice", "bob")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("justone\n", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_edge_list(path)

    def test_non_integer_token_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b\n", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_edge_list(path)
