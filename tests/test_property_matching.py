"""Property-based tests (hypothesis) for the matching algorithms.

The key invariants of the paper are checked on randomly generated graphs and
patterns:

* ``Match`` agrees with the naive greatest-fixpoint reference;
* the returned relation really is a bounded simulation, and it is maximal;
* graph simulation coincides with bounded simulation on traditional patterns;
* all three distance oracles produce the same match;
* isomorphism embeddings are always contained in the maximum match.
"""

from __future__ import annotations

from typing import Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distance.bfs import BFSDistanceOracle
from repro.distance.matrix import DistanceMatrix
from repro.distance.twohop import TwoHopOracle
from repro.graph.datagraph import DataGraph
from repro.graph.pattern import Pattern
from repro.isomorphism.vf2 import vf2_isomorphisms
from repro.matching.bounded import match, naive_match
from repro.matching.simulation import graph_simulation

LABELS = ["A", "B", "C"]

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def data_graphs(draw, max_nodes: int = 12) -> DataGraph:
    """A random labelled digraph with up to *max_nodes* nodes."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = draw(
        st.lists(st.sampled_from(LABELS), min_size=num_nodes, max_size=num_nodes)
    )
    graph = DataGraph(name="hypothesis")
    for index, label in enumerate(labels):
        graph.add_node(index, label=label)
    possible_edges = [
        (u, v) for u in range(num_nodes) for v in range(num_nodes) if u != v
    ]
    if possible_edges:
        edges = draw(
            st.lists(st.sampled_from(possible_edges), max_size=3 * num_nodes, unique=True)
        )
        for source, target in edges:
            graph.add_edge(source, target, strict=False)
    return graph


@st.composite
def patterns(draw, max_nodes: int = 4, traditional: bool = False) -> Pattern:
    """A random connected pattern with label predicates and small bounds."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    pattern = Pattern(name="hypothesis-pattern")
    for index in range(num_nodes):
        pattern.add_node(index, draw(st.sampled_from(LABELS)))
    # A random tree backbone keeps the pattern connected.
    for index in range(1, num_nodes):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        bound = 1 if traditional else draw(st.sampled_from([1, 2, 3, "*"]))
        pattern.add_edge(parent, index, bound)
    # Possibly one extra edge (may create a cycle).
    if num_nodes >= 2 and draw(st.booleans()):
        source = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        target = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if source != target and not pattern.has_edge(source, target):
            bound = 1 if traditional else draw(st.sampled_from([1, 2, 3, "*"]))
            pattern.add_edge(source, target, bound)
    return pattern


@st.composite
def pattern_graph_pairs(draw, traditional: bool = False) -> Tuple[Pattern, DataGraph]:
    return draw(patterns(traditional=traditional)), draw(data_graphs())


class TestMatchProperties:
    @SETTINGS
    @given(pattern_graph_pairs())
    def test_match_agrees_with_naive_reference(self, pair):
        pattern, graph = pair
        assert match(pattern, graph) == naive_match(pattern, graph)

    @SETTINGS
    @given(pattern_graph_pairs())
    def test_result_is_a_bounded_simulation(self, pair):
        """Every pair of the result satisfies the predicate and edge conditions."""
        pattern, graph = pair
        oracle = DistanceMatrix(graph)
        result = match(pattern, graph, oracle)
        for u, v in result.pairs():
            assert pattern.predicate(u).evaluate(graph.attributes(v))
            for u_child in pattern.successors(u):
                bound = pattern.bound(u, u_child)
                assert oracle.descendants_within(v, bound) & result.matches(u_child)

    @SETTINGS
    @given(pattern_graph_pairs())
    def test_result_is_maximal(self, pair):
        """No candidate outside the result can be added while keeping a simulation.

        Together with `test_result_is_a_bounded_simulation` this pins down the
        unique maximum match of Proposition 2.1: adding any excluded pair to
        the relation breaks the simulation conditions (when the relation is
        non-empty) — checked here for pairs that satisfy the predicate.
        """
        pattern, graph = pair
        oracle = DistanceMatrix(graph)
        result = match(pattern, graph, oracle)
        if result.is_empty:
            return
        for u in pattern.nodes():
            for v in graph.nodes():
                if result.contains(u, v):
                    continue
                if not pattern.predicate(u).evaluate(graph.attributes(v)):
                    continue
                # v must violate some child constraint w.r.t. the maximum match.
                violates = False
                for u_child in pattern.successors(u):
                    bound = pattern.bound(u, u_child)
                    if not (oracle.descendants_within(v, bound) & result.matches(u_child)):
                        violates = True
                        break
                assert violates, (u, v)

    @SETTINGS
    @given(pattern_graph_pairs(traditional=True))
    def test_traditional_patterns_reduce_to_graph_simulation(self, pair):
        pattern, graph = pair
        assert match(pattern, graph) == graph_simulation(pattern, graph)

    @SETTINGS
    @given(pattern_graph_pairs())
    def test_oracle_variants_agree(self, pair):
        pattern, graph = pair
        reference = match(pattern, graph, DistanceMatrix(graph))
        assert match(pattern, graph, BFSDistanceOracle(graph)) == reference
        assert match(pattern, graph, TwoHopOracle(graph)) == reference

    @SETTINGS
    @given(pattern_graph_pairs(traditional=True))
    def test_isomorphism_embeddings_contained_in_maximum_match(self, pair):
        pattern, graph = pair
        result = match(pattern, graph)
        for embedding in vf2_isomorphisms(pattern, graph, max_matches=20):
            for u, v in embedding.items():
                assert result.contains(u, v)

    @SETTINGS
    @given(pattern_graph_pairs(), st.integers(min_value=0, max_value=10**6))
    def test_adding_a_data_edge_never_shrinks_the_match(self, pair, salt):
        """Bounded simulation is monotone in the data graph's edge set."""
        pattern, graph = pair
        before = match(pattern, graph)
        nodes = graph.node_list()
        if len(nodes) < 2:
            return
        source = nodes[salt % len(nodes)]
        target = nodes[(salt // 7 + 1) % len(nodes)]
        if source == target or graph.has_edge(source, target):
            return
        graph.add_edge(source, target)
        after = match(pattern, graph)
        assert before.is_subrelation_of(after)
