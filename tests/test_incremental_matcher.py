"""Unit tests for the incremental matcher (Match-, Match+, IncMatch)."""

from __future__ import annotations

import random

import pytest

from repro.distance.incremental import EdgeUpdate
from repro.distance.matrix import DistanceMatrix
from repro.exceptions import CyclicPatternError, IncrementalError
from repro.graph.builders import (
    collaboration_graph,
    collaboration_pattern,
    social_matching_pair,
)
from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph
from repro.graph.pattern import Pattern
from repro.graph.pattern_generator import PatternGenerator
from repro.matching.bounded import match
from repro.matching.incremental import IncrementalMatcher


def simple_dag_pattern() -> Pattern:
    pattern = Pattern()
    pattern.add_node("A", "A")
    pattern.add_node("B", "B")
    pattern.add_node("C", "C")
    pattern.add_edge("A", "B", 2)
    pattern.add_edge("B", "C", 2)
    return pattern


def simple_graph() -> DataGraph:
    graph = DataGraph()
    for node, label in [("a1", "A"), ("a2", "A"), ("b1", "B"), ("b2", "B"), ("c1", "C")]:
        graph.add_node(node, label=label)
    graph.add_edge("a1", "b1")
    graph.add_edge("a2", "b2")
    graph.add_edge("b1", "c1")
    graph.add_edge("b2", "c1")
    return graph


class TestInitialisation:
    def test_initial_match_equals_batch(self):
        graph = simple_graph()
        matcher = IncrementalMatcher(simple_dag_pattern(), graph)
        assert matcher.match == match(simple_dag_pattern(), simple_graph())

    def test_mat_and_can_partition_candidates(self):
        graph = simple_graph()
        graph.add_node("b3", label="B")  # B candidate with no C successor
        matcher = IncrementalMatcher(simple_dag_pattern(), graph)
        assert "b3" in matcher.can("B")
        assert "b3" not in matcher.mat("B")
        assert matcher.mat("B") == {"b1", "b2"}

    def test_reuses_supplied_matrix(self):
        graph = simple_graph()
        matrix = DistanceMatrix(graph)
        matcher = IncrementalMatcher(simple_dag_pattern(), graph, matrix=matrix)
        assert matcher.matrix is matrix

    def test_matrix_over_other_graph_rejected(self):
        graph = simple_graph()
        other = simple_graph()
        with pytest.raises(IncrementalError):
            IncrementalMatcher(simple_dag_pattern(), graph, matrix=DistanceMatrix(other))

    def test_invalid_on_cyclic_option(self):
        with pytest.raises(IncrementalError):
            IncrementalMatcher(simple_dag_pattern(), simple_graph(), on_cyclic="explode")


class TestDeletion:
    def test_deleting_support_edge_removes_matches(self):
        graph = simple_graph()
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph)
        area = matcher.delete_edge("b2", "c1")
        assert ("B", "b2") in area.removed_matches
        assert ("A", "a2") in area.removed_matches
        assert matcher.match == match(pattern, graph.copy())

    def test_deleting_redundant_edge_changes_nothing(self):
        graph = simple_graph()
        graph.add_edge("a1", "b2")
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph)
        before = matcher.match
        area = matcher.delete_edge("a1", "b2")
        assert not area.removed_matches
        assert matcher.match == before

    def test_delete_missing_edge_noop(self):
        graph = simple_graph()
        matcher = IncrementalMatcher(simple_dag_pattern(), graph)
        area = matcher.delete_edge("c1", "a1")
        assert area.aff1_size == 0
        assert not area.removed_matches

    def test_match_becomes_empty_but_state_recovers(self):
        graph = simple_graph()
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph)
        matcher.delete_edge("b1", "c1")
        matcher.delete_edge("b2", "c1")
        assert matcher.match.is_empty
        assert match(pattern, graph.copy()).is_empty
        # Re-inserting one support edge revives the match.
        matcher.insert_edge("b1", "c1")
        assert matcher.match == match(pattern, graph.copy())
        assert not matcher.match.is_empty

    def test_deletion_works_with_cyclic_pattern(self):
        pattern, graph = social_matching_pair()  # P1 is cyclic (DM -> A)
        matcher = IncrementalMatcher(pattern, graph)
        matcher.delete_edge("HR_SE", "DM_r")
        assert matcher.match == match(pattern, graph.copy())

    def test_paper_example_g2_minus_db_gen(self):
        """Example 2.2(3) replayed incrementally: deleting (DB, Gen) empties the match."""
        pattern = collaboration_pattern()
        graph = collaboration_graph()
        matcher = IncrementalMatcher(pattern, graph)
        assert matcher.match
        matcher.delete_edge("DB", "Gen")
        assert matcher.match.is_empty


class TestInsertion:
    def test_insertion_adds_matches(self):
        graph = simple_graph()
        graph.add_node("b3", label="B")
        graph.add_node("a3", label="A")
        graph.add_edge("a3", "b3")
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph)
        assert "b3" not in matcher.mat("B")
        area = matcher.insert_edge("b3", "c1")
        assert ("B", "b3") in area.added_matches
        assert ("A", "a3") in area.added_matches
        assert matcher.match == match(pattern, graph.copy())

    def test_insert_existing_edge_noop(self):
        graph = simple_graph()
        matcher = IncrementalMatcher(simple_dag_pattern(), graph)
        area = matcher.insert_edge("a1", "b1")
        assert area.aff1_size == 0
        assert not area.added_matches

    def test_insertion_with_cyclic_pattern_raises(self):
        pattern, graph = social_matching_pair()
        matcher = IncrementalMatcher(pattern, graph)
        with pytest.raises(CyclicPatternError):
            matcher.insert_edge("DM_l", "HR1")

    def test_insertion_with_cyclic_pattern_recompute_fallback(self):
        pattern, graph = social_matching_pair()
        matcher = IncrementalMatcher(pattern, graph, on_cyclic="recompute")
        matcher.insert_edge("DM_l", "HR1")
        assert matcher.match == match(pattern, graph.copy())

    def test_insertion_enabling_self_cycle_support(self):
        """Gaining a successor can enable a node to support itself via a cycle."""
        graph = DataGraph()
        graph.add_node("x", label="X")
        graph.add_node("y", label="Y")
        graph.add_edge("y", "x")
        pattern = Pattern()
        pattern.add_node("a", "X")
        pattern.add_node("b", "X")
        pattern.add_edge("a", "b", 2)
        matcher = IncrementalMatcher(pattern, graph)
        assert matcher.match.is_empty
        matcher.insert_edge("x", "y")  # creates the 2-cycle x -> y -> x
        assert matcher.match == match(pattern, graph.copy())
        assert not matcher.match.is_empty


class TestBatchIncMatch:
    def test_mixed_batch_agrees_with_recompute(self):
        graph = simple_graph()
        graph.add_node("b3", label="B")
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph)
        updates = [
            EdgeUpdate.delete("b2", "c1"),
            EdgeUpdate.insert("b3", "c1"),
            EdgeUpdate.insert("a2", "b3"),
        ]
        area = matcher.apply(updates)
        assert matcher.match == match(pattern, graph.copy())
        assert area.aff1_size > 0

    def test_batch_with_insertions_requires_dag(self):
        pattern, graph = social_matching_pair()
        matcher = IncrementalMatcher(pattern, graph)
        with pytest.raises(CyclicPatternError):
            matcher.apply([EdgeUpdate.insert("DM_l", "HR1")])

    def test_batch_deletions_only_allowed_for_cyclic_patterns(self):
        pattern, graph = social_matching_pair()
        matcher = IncrementalMatcher(pattern, graph)
        matcher.apply([EdgeUpdate.delete("SE1", "DM_l")])
        assert matcher.match == match(pattern, graph.copy())

    def test_empty_update_list(self):
        graph = simple_graph()
        matcher = IncrementalMatcher(simple_dag_pattern(), graph)
        before = matcher.match
        area = matcher.apply([])
        assert matcher.match == before
        assert area.total_size == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_randomised_batches_agree_with_recompute(self, seed):
        graph = random_data_graph(18, 40, num_labels=4, seed=seed)
        generator = PatternGenerator(graph, seed=seed)
        pattern = generator.generate_dag(4, 5, 3)
        matcher = IncrementalMatcher(pattern, graph)
        rng = random.Random(seed)
        nodes = graph.node_list()
        updates = []
        for source, target in rng.sample(graph.edge_list(), 5):
            updates.append(EdgeUpdate.delete(source, target))
        added = set()
        while len(added) < 5:
            source, target = rng.choice(nodes), rng.choice(nodes)
            if source != target and not graph.has_edge(source, target) and (source, target) not in added:
                added.add((source, target))
                updates.append(EdgeUpdate.insert(source, target))
        rng.shuffle(updates)
        matcher.apply(updates)
        assert matcher.match == match(pattern, graph.copy())
