"""Property-based tests for the compiled matching path.

The compiled bitset refinement must be *relation-identical* to the naive
greatest-fixpoint reference and to the legacy set-based implementations, on
random graphs and random patterns, for every distance oracle.  These tests
are the acceptance gate of the compiled core: any divergence between the
interned/bitset world and the original node-id world is a bug.
"""

from __future__ import annotations

from typing import Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distance.bfs import BFSDistanceOracle
from repro.distance.matrix import DistanceMatrix
from repro.distance.twohop import TwoHopOracle
from repro.graph.compiled import compile_graph
from repro.graph.datagraph import DataGraph
from repro.graph.pattern import Pattern
from repro.matching.bounded import match, naive_match
from repro.matching.simulation import graph_simulation

LABELS = ["A", "B", "C"]

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def data_graphs(draw, max_nodes: int = 12) -> DataGraph:
    """A random labelled digraph with up to *max_nodes* nodes."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = draw(
        st.lists(st.sampled_from(LABELS), min_size=num_nodes, max_size=num_nodes)
    )
    graph = DataGraph(name="hypothesis")
    for index, label in enumerate(labels):
        graph.add_node(index, label=label)
    possible_edges = [
        (u, v) for u in range(num_nodes) for v in range(num_nodes) if u != v
    ]
    if possible_edges:
        edges = draw(
            st.lists(st.sampled_from(possible_edges), max_size=3 * num_nodes, unique=True)
        )
        for source, target in edges:
            graph.add_edge(source, target, strict=False)
    return graph


@st.composite
def patterns(draw, max_nodes: int = 4, traditional: bool = False) -> Pattern:
    """A random connected pattern with label predicates and small bounds."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    pattern = Pattern(name="hypothesis-pattern")
    for index in range(num_nodes):
        pattern.add_node(index, draw(st.sampled_from(LABELS)))
    for index in range(1, num_nodes):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        bound = 1 if traditional else draw(st.sampled_from([1, 2, 3, "*"]))
        pattern.add_edge(parent, index, bound)
    if num_nodes >= 2 and draw(st.booleans()):
        source = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        target = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if source != target and not pattern.has_edge(source, target):
            bound = 1 if traditional else draw(st.sampled_from([1, 2, 3, "*"]))
            pattern.add_edge(source, target, bound)
    return pattern


@st.composite
def pattern_graph_pairs(draw, traditional: bool = False) -> Tuple[Pattern, DataGraph]:
    return draw(patterns(traditional=traditional)), draw(data_graphs())


class TestCompiledMatchProperties:
    @SETTINGS
    @given(pattern_graph_pairs())
    def test_compiled_match_agrees_with_naive_reference(self, pair):
        pattern, graph = pair
        assert match(pattern, graph) == naive_match(pattern, graph)

    @SETTINGS
    @given(pattern_graph_pairs())
    def test_compiled_match_agrees_with_legacy_set_path(self, pair):
        pattern, graph = pair
        oracle = DistanceMatrix(graph)
        compiled = match(pattern, graph, oracle, use_compiled=True)
        legacy = match(pattern, graph, oracle, use_compiled=False)
        assert compiled == legacy

    @SETTINGS
    @given(pattern_graph_pairs())
    def test_all_oracles_agree_on_the_compiled_path(self, pair):
        pattern, graph = pair
        reference = naive_match(pattern, graph)
        assert match(pattern, graph, DistanceMatrix(graph)) == reference
        assert match(pattern, graph, BFSDistanceOracle(graph)) == reference
        assert match(pattern, graph, BFSDistanceOracle(graph, cache=False)) == reference
        assert match(pattern, graph, TwoHopOracle(graph)) == reference
        assert (
            match(pattern, graph, TwoHopOracle(graph, reachability_only=True))
            == reference
        )

    @SETTINGS
    @given(pattern_graph_pairs(traditional=True))
    def test_compiled_graph_simulation_agrees_with_legacy(self, pair):
        pattern, graph = pair
        assert graph_simulation(pattern, graph) == graph_simulation(
            pattern, graph, use_compiled=False
        )

    @SETTINGS
    @given(pattern_graph_pairs(traditional=True))
    def test_compiled_graph_simulation_agrees_with_bounded_match(self, pair):
        pattern, graph = pair
        assert graph_simulation(pattern, graph) == match(pattern, graph)

    @SETTINGS
    @given(pattern_graph_pairs(), st.integers(min_value=0, max_value=10**6))
    def test_match_after_mutation_recompiles(self, pair, salt):
        """The version-keyed cache must never serve a stale snapshot."""
        pattern, graph = pair
        match(pattern, graph)  # populate the compile cache
        nodes = graph.node_list()
        if len(nodes) < 2:
            return
        source = nodes[salt % len(nodes)]
        target = nodes[(salt // 7 + 1) % len(nodes)]
        if source == target:
            return
        if graph.has_edge(source, target):
            graph.remove_edge(source, target)
        else:
            graph.add_edge(source, target)
        assert compile_graph(graph).version == graph.version
        assert match(pattern, graph) == naive_match(pattern, graph)

    @SETTINGS
    @given(data_graphs())
    def test_compiled_reachability_matches_datagraph(self, graph):
        compiled = compile_graph(graph)
        for node in graph.nodes():
            index = compiled.id_of(node)
            for bound in (1, 2, None):
                assert compiled.decode(
                    compiled.descendants_within_bits(index, bound)
                ) == graph.descendants_within(node, bound)
                assert compiled.decode(
                    compiled.ancestors_within_bits(index, bound)
                ) == graph.ancestors_within(node, bound)
