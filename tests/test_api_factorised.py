"""FactorisedView — columns + edge certificates instead of the tuple set."""

from __future__ import annotations

import itertools
import tracemalloc

import pytest

from repro.api import FactorisedView, wrap
from repro.exceptions import EdgeNotFoundError
from repro.graph.datagraph import DataGraph
from repro.graph.pattern import Pattern
from repro.matching.match_result import MatchResult


@pytest.fixture
def layered():
    """Two A-nodes each reaching two of four B-nodes in one hop."""
    graph = DataGraph(name="layered")
    for name in ("a1", "a2"):
        graph.add_node(name, label="A")
    for name in ("b1", "b2", "b3", "b4"):
        graph.add_node(name, label="B")
    graph.add_edge("a1", "b1")
    graph.add_edge("a1", "b2")
    graph.add_edge("a2", "b3")
    graph.add_edge("a2", "b4")
    return graph


def ab_pattern(bound: int = 1) -> Pattern:
    pattern = Pattern(name="ab")
    pattern.add_node("A", "A")
    pattern.add_node("B", "B")
    pattern.add_edge("A", "B", bound)
    return pattern


class TestFactorisation:
    def test_view_factorised_returns_factorised_view(self, layered):
        view = wrap(layered).query(ab_pattern()).match()
        factorised = view.factorised()
        assert isinstance(factorised, FactorisedView)
        assert factorised.result is view.result
        assert factorised.pattern.name == "ab"

    def test_columns_are_sorted_and_cached(self, layered):
        factorised = wrap(layered).query(ab_pattern()).match().factorised()
        assert factorised.column("A") == ["a1", "a2"]
        assert factorised.column("B") == ["b1", "b2", "b3", "b4"]
        assert factorised.column("A") is factorised.column("A")
        assert factorised.columns() == {
            "A": ["a1", "a2"],
            "B": ["b1", "b2", "b3", "b4"],
        }

    def test_count_is_the_column_product(self, layered):
        factorised = wrap(layered).query(ab_pattern()).match().factorised()
        assert factorised.count_factorised() == 2 * 4
        assert bool(factorised)

    def test_empty_result_counts_zero(self, layered):
        pattern = Pattern(name="no-match")
        pattern.add_node("A", "A")
        pattern.add_node("Z", "Z")
        pattern.add_edge("A", "Z", 1)
        factorised = wrap(layered).query(pattern).match().factorised()
        assert factorised.count_factorised() == 0
        assert not factorised
        assert list(factorised.to_rows()) == []

    def test_empty_pattern_counts_the_empty_product(self):
        factorised = FactorisedView(Pattern(), MatchResult.empty())
        assert factorised.count_factorised() == 1
        assert list(factorised.to_rows()) == []

    def test_no_len_by_design(self, layered):
        # The tuple count routinely exceeds ssize_t; len() must not exist.
        factorised = wrap(layered).query(ab_pattern()).match().factorised()
        with pytest.raises(TypeError):
            len(factorised)

    def test_repr_shows_column_sizes(self, layered):
        factorised = wrap(layered).query(ab_pattern()).match().factorised()
        assert "2x4" in repr(factorised)


class TestCertificates:
    def test_certificate_per_parent_candidate(self, layered):
        factorised = wrap(layered).query(ab_pattern()).match().factorised()
        cert = factorised.certificate("A", "B")
        assert cert == {
            "a1": frozenset({"b1", "b2"}),
            "a2": frozenset({"b3", "b4"}),
        }
        assert factorised.certificate("A", "B") is cert

    def test_certificate_rejects_non_edges(self, layered):
        factorised = wrap(layered).query(ab_pattern()).match().factorised()
        with pytest.raises(EdgeNotFoundError):
            factorised.certificate("B", "A")

    def test_certificate_requires_an_oracle(self, layered):
        view = wrap(layered).query(ab_pattern()).match()
        bare = FactorisedView(view.pattern, view.result, graph=layered)
        with pytest.raises(ValueError):
            bare.certificate("A", "B")


class TestEnumeration:
    def test_default_rows_are_the_cross_product(self, layered):
        factorised = wrap(layered).query(ab_pattern()).match().factorised()
        rows = list(factorised.to_rows())
        assert len(rows) == factorised.count_factorised()
        assert rows[0] == {"A": "a1", "B": "b1"}
        assert {frozenset(row.items()) for row in rows} == {
            frozenset({("A", a), ("B", b)})
            for a in ("a1", "a2")
            for b in ("b1", "b2", "b3", "b4")
        }

    def test_connected_rows_respect_the_certificates(self, layered):
        factorised = wrap(layered).query(ab_pattern()).match().factorised()
        rows = list(factorised.to_rows(connected=True))
        assert {tuple(sorted(row.items())) for row in rows} == {
            (("A", "a1"), ("B", "b1")),
            (("A", "a1"), ("B", "b2")),
            (("A", "a2"), ("B", "b3")),
            (("A", "a2"), ("B", "b4")),
        }

    def test_connected_rows_on_a_chain(self):
        graph = DataGraph()
        for index in range(4):
            graph.add_node(f"n{index}", label=f"L{index % 2}")
        for index in range(3):
            graph.add_edge(f"n{index}", f"n{index + 1}")
        pattern = Pattern()
        pattern.add_node("x", "L0")
        pattern.add_node("y", "L1")
        pattern.add_node("z", "L0")
        pattern.add_edge("x", "y", 1)
        pattern.add_edge("y", "z", 1)
        factorised = wrap(graph).query(pattern).match().factorised()
        rows = list(factorised.to_rows(connected=True))
        assert rows == [{"x": "n0", "y": "n1", "z": "n2"}]
        # The unconstrained cross product is strictly larger.
        assert factorised.count_factorised() > len(rows)

    def test_enumeration_streams_without_materialising(self):
        """Acceptance: a cross-product-heavy result enumerates in O(columns) memory."""
        num_per_label = 1500
        graph = DataGraph(name="wide")
        for label in ("A", "B", "C"):
            for index in range(num_per_label):
                graph.add_node(f"{label}{index}", label=label)
        pattern = Pattern(name="wide")
        for label in ("A", "B", "C"):
            pattern.add_node(label, label)
        factorised = wrap(graph).query(pattern).match().factorised()

        tracemalloc.start()
        # 3.375 billion assignment tuples: the count is exact big-int
        # arithmetic and the row prefix streams off the factorisation.
        assert factorised.count_factorised() == num_per_label**3
        prefix = list(itertools.islice(factorised.to_rows(), 1000))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(prefix) == 1000
        assert all(len(row) == 3 for row in prefix)
        # Far below anything that could hold 3.4e9 tuples; generous enough
        # to ignore allocator noise around the three 1.5k-entry columns.
        assert peak < 8 * 1024 * 1024
