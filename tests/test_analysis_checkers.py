"""Checker-level tests: every rule fires on its bad fixture, not its good twin."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.model import build_module_model, module_name_for_path
from repro.analysis.registry import Project, all_checkers
from repro.analysis.suppressions import collect_suppressions

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run_checkers(filename, fake_path=None):
    source = (FIXTURES / filename).read_text(encoding="utf-8")
    path = fake_path or str(FIXTURES / filename)
    model = build_module_model(path, source)
    project = Project([model])
    findings = []
    for checker in all_checkers():
        findings.extend(checker.check(model, project))
    return findings


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestVersionGuard:
    def test_fires_on_unguarded_memo_reads(self):
        findings = run_checkers("version_guard_bad.py")
        hits = [f for f in findings if f.rule == "version-guard"]
        assert {f.symbol for f in hits} == {
            "StaleBallServer.ball",
            "seeded_fixpoint",
        }
        for finding in hits:
            assert finding.line > 0
            assert finding.hint

    def test_quiet_on_guarded_validated_and_fresh_memos(self):
        findings = run_checkers("version_guard_good.py")
        assert "version-guard" not in rules_of(findings)


class TestPatchListener:
    def test_fires_on_deaf_cache_class(self):
        findings = run_checkers("patch_listener_bad.py")
        hits = [f for f in findings if f.rule == "patch-listener"]
        assert [f.symbol for f in hits] == ["DeafCache"]

    def test_quiet_on_listener_registration(self):
        findings = run_checkers("patch_listener_good.py")
        assert "patch-listener" not in rules_of(findings)

    def test_quiet_on_version_tracking(self):
        # The good version-guard fixture tracks _pinned_version instead of
        # registering a listener; either discipline satisfies the rule.
        findings = run_checkers("version_guard_good.py")
        assert "patch-listener" not in rules_of(findings)


class TestSharedReadonly:
    def test_fires_on_mutation_reachable_from_attach(self):
        findings = run_checkers("shared_readonly_bad.py")
        hits = [f for f in findings if f.rule == "shared-readonly"]
        assert [f.symbol for f in hits] == ["apply_insert"]

    def test_quiet_on_read_only_worker(self):
        findings = run_checkers("shared_readonly_good.py")
        assert "shared-readonly" not in rules_of(findings)


class TestDecodeBoundary:
    FAKE_API_PATH = "src/repro/api/fixture_surface.py"

    def test_fires_on_public_surface_leaking_bits(self):
        findings = run_checkers("decode_boundary_bad.py", self.FAKE_API_PATH)
        hits = [f for f in findings if f.rule == "decode-boundary"]
        assert {f.symbol for f in hits} == {
            "LeakySurface.matched",
            "LeakySurface.ball",
        }

    def test_quiet_when_bits_are_decoded(self):
        findings = run_checkers("decode_boundary_good.py", self.FAKE_API_PATH)
        assert "decode-boundary" not in rules_of(findings)

    def test_rule_is_scoped_to_public_modules(self):
        # The same leaky code outside repro.api / repro.cli is internal
        # plumbing and not this rule's business.
        findings = run_checkers("decode_boundary_bad.py")
        assert "decode-boundary" not in rules_of(findings)


class TestNoDeprecatedInternal:
    def test_fires_on_both_shims(self):
        findings = run_checkers("no_deprecated_bad.py")
        hits = [f for f in findings if f.rule == "no-deprecated-internal"]
        assert len(hits) == 2
        messages = " / ".join(f.message for f in hits)
        assert "matches()" in messages
        assert "to_dict()" in messages

    def test_quiet_on_legitimate_namesakes(self):
        findings = run_checkers("no_deprecated_good.py")
        assert "no-deprecated-internal" not in rules_of(findings)


class TestModel:
    def test_module_name_for_src_layout(self):
        assert (
            module_name_for_path("src/repro/engine/cache.py")
            == "repro.engine.cache"
        )
        assert module_name_for_path("src/repro/api/__init__.py") == "repro.api"
        assert module_name_for_path("scratch/standalone.py") == "standalone"

    def test_memo_attr_inference(self):
        source = (FIXTURES / "version_guard_bad.py").read_text(encoding="utf-8")
        model = build_module_model("version_guard_bad.py", source)
        cls = model.classes["StaleBallServer"]
        assert cls.memo_attrs() == {"_bits"}
        assert not cls.tracks_version()

    def test_guard_helper_detection(self):
        source = (FIXTURES / "version_guard_good.py").read_text(encoding="utf-8")
        model = build_module_model("version_guard_good.py", source)
        assert "_check_version" in model.local_guard_helpers()


class TestSuppressionParsing:
    def test_only_real_comments_count(self):
        source = (
            '"""Docstring showing # repro: ignore[version-guard] syntax."""\n'
            "x = 1  # repro: ignore[version-guard] -- demo\n"
        )
        suppressions = collect_suppressions(source)
        assert list(suppressions) == [2]
        assert suppressions[2].covers("version-guard")
        assert suppressions[2].justification == "demo"

    def test_multiple_rules_and_all(self):
        source = "x = 1  # repro: ignore[version-guard, patch-listener] -- why\n"
        sup = collect_suppressions(source)[1]
        assert sup.covers("version-guard")
        assert sup.covers("patch-listener")
        assert not sup.covers("decode-boundary")
        assert collect_suppressions("y = 2  # repro: ignore[all] -- why\n")[
            1
        ].covers("decode-boundary")
