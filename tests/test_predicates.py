"""Unit tests for the predicate language (repro.graph.predicates)."""

from __future__ import annotations

import pytest

from repro.exceptions import PredicateError
from repro.graph.predicates import TRUE, Atom, Predicate, parse_predicate


class TestAtom:
    def test_equality_operator(self):
        atom = Atom("category", "=", "Music")
        assert atom.evaluate({"category": "Music"})
        assert not atom.evaluate({"category": "Comedy"})

    def test_double_equals_is_canonicalised(self):
        assert Atom("x", "==", 1).op == "="

    def test_missing_attribute_never_satisfies(self):
        atom = Atom("rate", ">", 3)
        assert not atom.evaluate({})
        assert not atom.evaluate({"other": 10})

    @pytest.mark.parametrize(
        "op,value,attr_value,expected",
        [
            ("<", 5, 3, True),
            ("<", 5, 7, False),
            ("<=", 5, 5, True),
            (">", 3, 4, True),
            (">=", 3, 3, True),
            ("!=", 3, 4, True),
            ("!=", 3, 3, False),
        ],
    )
    def test_comparison_operators(self, op, value, attr_value, expected):
        atom = Atom("x", op, value)
        assert atom.evaluate({"x": attr_value}) is expected

    def test_incomparable_types_ordering_is_false(self):
        atom = Atom("x", ">", 3)
        assert not atom.evaluate({"x": "a string"})

    def test_incomparable_types_inequality_still_works(self):
        assert Atom("x", "!=", 3).evaluate({"x": "a string"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            Atom("x", "<>", 3)

    def test_glob_operator(self):
        atom = Atom("job", "~", "bio*")
        assert atom.evaluate({"job": "biologist"})
        assert not atom.evaluate({"job": "chemist"})
        assert not atom.evaluate({"job": 3})          # non-string never globs
        assert not atom.evaluate({"other": "bio"})    # missing attribute
        assert Atom("v", "~", "a?c").evaluate({"v": "abc"})

    def test_glob_requires_string_pattern(self):
        # Every front-end (DSL, builder, JSON) shares this invariant.
        with pytest.raises(PredicateError, match="string glob"):
            Atom("job", "~", 3)
        with pytest.raises(PredicateError, match="string glob"):
            Predicate.parse("job ~ 3")

    def test_empty_attribute_rejected(self):
        with pytest.raises(PredicateError):
            Atom("", "=", 3)

    def test_parse_numeric(self):
        atom = Atom.parse("rate > 3.5")
        assert atom.attribute == "rate"
        assert atom.op == ">"
        assert atom.value == 3.5

    def test_parse_quoted_string(self):
        atom = Atom.parse("category = 'Travel & Places'")
        assert atom.value == "Travel & Places"

    def test_parse_boolean(self):
        assert Atom.parse("active = true").value is True
        assert Atom.parse("active = FALSE").value is False

    def test_parse_invalid(self):
        with pytest.raises(PredicateError):
            Atom.parse("just-a-token")

    def test_round_trip_dict(self):
        atom = Atom("views", ">=", 700)
        assert Atom.from_dict(atom.to_dict()) == atom

    def test_str_and_repr(self):
        atom = Atom("category", "=", "Music")
        assert "category" in str(atom)
        assert "Music" in repr(atom)

    def test_hash_and_equality(self):
        assert Atom("a", "=", 1) == Atom("a", "==", 1)
        assert hash(Atom("a", "=", 1)) == hash(Atom("a", "==", 1))
        assert Atom("a", "=", 1) != Atom("a", "=", 2)


class TestPredicate:
    def test_wildcard_matches_everything(self):
        assert TRUE.evaluate({})
        assert TRUE.evaluate({"anything": 1})
        assert TRUE.is_wildcard

    def test_label_constructor(self):
        predicate = Predicate.label("AM")
        assert predicate.evaluate({"label": "AM"})
        assert not predicate.evaluate({"label": "FW"})

    def test_conjunction_semantics(self):
        predicate = Predicate.equals("category", "Music") & Predicate.parse("rate > 3")
        assert predicate.evaluate({"category": "Music", "rate": 4})
        assert not predicate.evaluate({"category": "Music", "rate": 2})
        assert not predicate.evaluate({"rate": 4})

    def test_parse_multi_atom(self):
        predicate = Predicate.parse("length > 120 & age > 365")
        assert len(predicate) == 2
        assert predicate.evaluate({"length": 200, "age": 400})
        assert not predicate.evaluate({"length": 200, "age": 100})

    def test_parse_empty_gives_wildcard(self):
        assert Predicate.parse("") == TRUE
        assert Predicate.parse("*") == TRUE

    def test_from_dict_constructor(self):
        predicate = Predicate.from_dict({"dept": "CS", "active": True})
        assert predicate.evaluate({"dept": "CS", "active": True})
        assert not predicate.evaluate({"dept": "CS", "active": False})

    def test_attributes_referenced_in_order(self):
        predicate = Predicate.parse("b > 1 & a = 2 & b < 9")
        assert predicate.attributes_referenced() == ("b", "a")

    def test_callable(self):
        predicate = Predicate.label("X")
        assert predicate({"label": "X"})

    def test_equality_and_hash(self):
        assert Predicate.parse("a = 1") == Predicate.parse("a = 1")
        assert hash(Predicate.parse("a = 1")) == hash(Predicate.parse("a = 1"))
        assert Predicate.parse("a = 1") != Predicate.parse("a = 2")

    def test_serialisation_round_trip(self):
        predicate = Predicate.parse("category = Music & rate > 3")
        assert Predicate.from_list(predicate.to_list()) == predicate

    def test_rejects_non_atoms(self):
        with pytest.raises(PredicateError):
            Predicate(["not an atom"])

    def test_str_wildcard(self):
        assert str(TRUE) == "*"


class TestParsePredicate:
    def test_none_is_wildcard(self):
        assert parse_predicate(None) == TRUE

    def test_existing_predicate_passthrough(self):
        predicate = Predicate.label("A")
        assert parse_predicate(predicate) is predicate

    def test_bare_string_is_label(self):
        predicate = parse_predicate("DM")
        assert predicate.evaluate({"label": "DM"})

    def test_expression_string(self):
        predicate = parse_predicate("rate > 3")
        assert predicate.evaluate({"rate": 5})

    def test_tilde_label_without_spaces_stays_a_label(self):
        # Pre-~ behaviour preserved: tilde-containing labels are label
        # literals unless the ~ is whitespace-delimited on both sides.
        for label in ("v1~stable", "rev ~stable", "job~ x"):
            predicate = parse_predicate(label)
            assert predicate.evaluate({"label": label}), label
            assert not predicate.evaluate({"v1": "stable"}), label

    def test_spaced_tilde_is_a_glob_expression(self):
        predicate = parse_predicate("job ~ 'bio*'")
        assert predicate.evaluate({"job": "biologist"})
        assert not predicate.evaluate({"job": "chemist"})

    def test_mapping(self):
        predicate = parse_predicate({"dept": "Bio"})
        assert predicate.evaluate({"dept": "Bio"})

    def test_rejects_other_types(self):
        with pytest.raises(PredicateError):
            parse_predicate(42)
