"""Tests for the subgraph-isomorphism baselines (SubIso / VF2)."""

from __future__ import annotations

import random

import pytest

from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph
from repro.graph.pattern import Pattern
from repro.isomorphism.common import compatibility_sets, mapping_to_subgraph
from repro.isomorphism.ullmann import (
    count_isomorphisms,
    find_isomorphism,
    ullmann_isomorphisms,
)
from repro.isomorphism.vf2 import vf2_count, vf2_find, vf2_isomorphisms
from repro.matching.bounded import match


def labelled_pattern(edges, labels):
    pattern = Pattern()
    for node, label in labels.items():
        pattern.add_node(node, label)
    for source, target in edges:
        pattern.add_edge(source, target, 1)
    return pattern


def triangle_graph():
    graph = DataGraph()
    graph.add_node(1, label="A")
    graph.add_node(2, label="B")
    graph.add_node(3, label="C")
    graph.add_node(4, label="B")
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(3, 1)
    graph.add_edge(1, 4)
    return graph


ENGINES = {
    "ullmann": (ullmann_isomorphisms, find_isomorphism, count_isomorphisms),
    "vf2": (vf2_isomorphisms, vf2_find, vf2_count),
}


@pytest.mark.parametrize("engine", ENGINES, ids=list(ENGINES))
class TestBothEngines:
    def test_finds_embedded_path(self, engine, chain_graph):
        enumerate_fn, find_fn, _ = ENGINES[engine]
        pattern = labelled_pattern([("u", "v")], {"u": "L1", "v": "L2"})
        mapping = find_fn(pattern, chain_graph)
        assert mapping == {"u": "n1", "v": "n2"}

    def test_no_match_when_absent(self, engine, chain_graph):
        _, find_fn, _ = ENGINES[engine]
        pattern = labelled_pattern([("u", "v")], {"u": "L2", "v": "L1"})
        assert find_fn(pattern, chain_graph) is None

    def test_triangle_found(self, engine):
        _, find_fn, _ = ENGINES[engine]
        pattern = labelled_pattern(
            [("a", "b"), ("b", "c"), ("c", "a")], {"a": "A", "b": "B", "c": "C"}
        )
        mapping = find_fn(pattern, triangle_graph())
        assert mapping == {"a": 1, "b": 2, "c": 3}

    def test_mapping_is_injective(self, engine):
        enumerate_fn, _, _ = ENGINES[engine]
        graph = random_data_graph(15, 45, num_labels=3, seed=1)
        pattern = labelled_pattern([(0, 1), (1, 2)], {0: "L0", 1: "L1", 2: "L2"})
        for mapping in enumerate_fn(pattern, graph):
            assert len(set(mapping.values())) == len(mapping)

    def test_every_mapping_preserves_edges_and_labels(self, engine):
        enumerate_fn, _, _ = ENGINES[engine]
        graph = random_data_graph(15, 60, num_labels=3, seed=2)
        pattern = labelled_pattern([(0, 1), (1, 2), (0, 2)], {0: "L0", 1: "L1", 2: "L2"})
        for mapping in enumerate_fn(pattern, graph):
            for u1, u2 in pattern.edges():
                assert graph.has_edge(mapping[u1], mapping[u2])
            for u, v in mapping.items():
                assert pattern.predicate(u).evaluate(graph.attributes(v))

    def test_max_matches_cap(self, engine):
        enumerate_fn, _, count_fn = ENGINES[engine]
        graph = random_data_graph(20, 100, num_labels=2, seed=3)
        pattern = labelled_pattern([(0, 1)], {0: "L0", 1: "L1"})
        capped = list(enumerate_fn(pattern, graph, max_matches=3))
        assert len(capped) <= 3
        assert count_fn(pattern, graph, max_matches=3) <= 3

    def test_pattern_larger_than_graph(self, engine):
        _, find_fn, _ = ENGINES[engine]
        graph = DataGraph()
        graph.add_node(1, label="A")
        pattern = labelled_pattern([(0, 1)], {0: "A", 1: "A"})
        assert find_fn(pattern, graph) is None

    def test_isomorphism_implies_bounded_simulation(self, engine):
        """Any isomorphic embedding also witnesses a bounded-simulation match."""
        _, find_fn, _ = ENGINES[engine]
        graph = random_data_graph(20, 70, num_labels=3, seed=4)
        pattern = labelled_pattern([(0, 1), (1, 2)], {0: "L0", 1: "L1", 2: "L2"})
        mapping = find_fn(pattern, graph)
        if mapping is not None:
            assert match(pattern, graph)


class TestEnginesAgree:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_embedding_sets(self, seed):
        graph = random_data_graph(14, 40, num_labels=3, seed=seed)
        rng = random.Random(seed)
        labels = [f"L{i}" for i in range(3)]
        pattern = labelled_pattern(
            [(0, 1), (1, 2)] + ([(0, 2)] if rng.random() < 0.5 else []),
            {i: rng.choice(labels) for i in range(3)},
        )
        ull = {tuple(sorted(m.items(), key=repr)) for m in ullmann_isomorphisms(pattern, graph)}
        vf2 = {tuple(sorted(m.items(), key=repr)) for m in vf2_isomorphisms(pattern, graph)}
        assert ull == vf2

    def test_agrees_with_networkx(self):
        networkx = pytest.importorskip("networkx")
        from networkx.algorithms import isomorphism as nx_iso

        graph = random_data_graph(12, 40, num_labels=2, seed=9)
        pattern = labelled_pattern([(0, 1), (1, 2)], {0: "L0", 1: "L1", 2: "L0"})

        nx_graph = networkx.DiGraph()
        for node in graph.nodes():
            nx_graph.add_node(node, label=graph.attribute(node, "label"))
        nx_graph.add_edges_from(graph.edges())
        nx_pattern = networkx.DiGraph()
        for node in pattern.nodes():
            nx_pattern.add_node(node, label=pattern.predicate(node).atoms[0].value)
        nx_pattern.add_edges_from(pattern.edges())

        matcher = nx_iso.DiGraphMatcher(
            nx_graph,
            nx_pattern,
            node_match=lambda d1, d2: d1["label"] == d2["label"],
        )
        nx_embeddings = {
            tuple(sorted(((pu, gv) for gv, pu in mapping.items()), key=repr))
            for mapping in matcher.subgraph_monomorphisms_iter()
        }
        our_embeddings = {
            tuple(sorted(m.items(), key=repr)) for m in vf2_isomorphisms(pattern, graph)
        }
        assert our_embeddings == nx_embeddings


class TestCommonHelpers:
    def test_compatibility_sets_degree_filter(self):
        graph = triangle_graph()
        pattern = labelled_pattern([("a", "b"), ("a", "c")], {"a": "A", "b": "B", "c": "C"})
        candidates = compatibility_sets(pattern, graph)
        assert candidates["a"] == {1}   # needs out-degree >= 2
        assert candidates["b"] == {2, 4}

    def test_mapping_to_subgraph(self):
        graph = triangle_graph()
        pattern = labelled_pattern([("a", "b")], {"a": "A", "b": "B"})
        subgraph = mapping_to_subgraph(pattern, graph, {"a": 1, "b": 2})
        assert subgraph.number_of_nodes() == 2
        assert subgraph.has_edge(1, 2)
        assert subgraph.attribute(1, "label") == "A"
