"""Unit tests for Algorithm Match (repro.matching.bounded)."""

from __future__ import annotations

import pytest

from repro.distance.bfs import BFSDistanceOracle
from repro.distance.matrix import DistanceMatrix
from repro.distance.twohop import TwoHopOracle
from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph
from repro.graph.pattern import Pattern
from repro.graph.pattern_generator import PatternGenerator
from repro.graph.predicates import Predicate
from repro.matching.bounded import candidate_sets, match, matches, naive_match


class TestCandidateSets:
    def test_predicate_filtering(self, tiny_graph, tiny_pattern):
        candidates = candidate_sets(tiny_pattern, tiny_graph)
        assert candidates["A"] == {"a"}
        assert candidates["D"] == {"d"}

    def test_out_degree_filter(self):
        graph = DataGraph()
        graph.add_node("x", label="A")       # no outgoing edge
        graph.add_node("y", label="A")
        graph.add_node("z", label="B")
        graph.add_edge("y", "z")
        pattern = Pattern()
        pattern.add_node("A", "A")
        pattern.add_node("B", "B")
        pattern.add_edge("A", "B", 1)
        with_filter = candidate_sets(pattern, graph)
        without_filter = candidate_sets(pattern, graph, out_degree_filter=False)
        assert with_filter["A"] == {"y"}
        assert without_filter["A"] == {"x", "y"}


class TestMatchBasics:
    def test_bounded_edge_respects_hops(self, chain_graph):
        pattern = Pattern()
        pattern.add_node("u", "L0")
        pattern.add_node("v", "L3")
        pattern.add_edge("u", "v", 3)
        assert match(pattern, chain_graph)
        pattern.set_bound("u", "v", 2)
        assert not match(pattern, chain_graph)

    def test_unbounded_edge_requires_reachability_only(self, chain_graph):
        pattern = Pattern()
        pattern.add_node("u", "L0")
        pattern.add_node("v", "L4")
        pattern.add_edge("u", "v", "*")
        assert match(pattern, chain_graph)
        reverse = Pattern()
        reverse.add_node("u", "L4")
        reverse.add_node("v", "L0")
        reverse.add_edge("u", "v", "*")
        assert not match(reverse, chain_graph)

    def test_nonempty_path_semantics_for_same_label_edge(self):
        """A pattern edge between two identically labelled nodes needs a real path."""
        graph = DataGraph()
        graph.add_node("only", label="X")
        pattern = Pattern()
        pattern.add_node("a", "X")
        pattern.add_node("b", "X")
        pattern.add_edge("a", "b", 2)
        # Single X node with no self-cycle: no nonempty path X -> X.
        assert not match(pattern, graph)
        graph.add_node("other", label="Y")
        graph.add_edge("only", "other")
        graph.add_edge("other", "only")
        # Now X lies on a 2-cycle, so the same node can serve both ends.
        assert match(pattern, graph)

    def test_empty_pattern_or_graph(self, tiny_graph, tiny_pattern):
        assert match(Pattern(), tiny_graph).is_empty
        assert match(tiny_pattern, DataGraph()).is_empty

    def test_matches_shim_is_deprecated_but_works(self, tiny_graph, tiny_pattern):
        with pytest.deprecated_call():
            assert matches(tiny_pattern, tiny_graph) is True

    def test_no_candidate_for_some_node(self, tiny_graph):
        pattern = Pattern()
        pattern.add_node("A", "A")
        pattern.add_node("Z", "Z")
        pattern.add_edge("A", "Z", 2)
        assert match(pattern, tiny_graph).is_empty

    def test_result_is_maximum(self, paper_p2_g2):
        """Every pair of the returned relation is genuinely part of a match."""
        pattern, graph = paper_p2_g2
        oracle = DistanceMatrix(graph)
        result = match(pattern, graph, oracle)
        for u, v in result.pairs():
            assert pattern.predicate(u).evaluate(graph.attributes(v))
            for u_child in pattern.successors(u):
                bound = pattern.bound(u, u_child)
                reachable = oracle.descendants_within(v, bound)
                assert reachable & result.matches(u_child), (u, v, u_child)

    def test_predicates_with_comparisons(self):
        graph = DataGraph()
        graph.add_node(1, kind="video", views=900, rate=4.8)
        graph.add_node(2, kind="video", views=100, rate=4.9)
        graph.add_node(3, kind="channel")
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        pattern = Pattern()
        pattern.add_node("popular", Predicate.parse("views >= 700 & rate > 4.5"))
        pattern.add_node("chan", Predicate.equals("kind", "channel"))
        pattern.add_edge("popular", "chan", 1)
        result = match(pattern, graph)
        assert result.matches("popular") == {1}

    def test_isolated_pattern_node(self, tiny_graph):
        pattern = Pattern()
        pattern.add_node("A", "A")
        pattern.add_node("lonely", "C")
        pattern.add_edge("A", "lonely", 1)
        # There is no edge requirement on "lonely" itself; it matches c.
        result = match(pattern, tiny_graph)
        assert result.matches("lonely") == {"c"}


class TestOracleVariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_oracles_agree(self, seed):
        graph = random_data_graph(30, 90, num_labels=5, seed=seed)
        generator = PatternGenerator(graph, seed=seed, unbounded_probability=0.2)
        pattern = generator.generate(4, 5, 3)
        reference = match(pattern, graph, DistanceMatrix(graph))
        assert match(pattern, graph, BFSDistanceOracle(graph)) == reference
        assert match(pattern, graph, TwoHopOracle(graph)) == reference

    def test_default_oracle_is_matrix(self, paper_p2_g2):
        pattern, graph = paper_p2_g2
        assert match(pattern, graph) == match(pattern, graph, DistanceMatrix(graph))


class TestAgainstNaiveReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_naive_fixpoint(self, seed):
        graph = random_data_graph(25, 60, num_labels=4, seed=seed)
        generator = PatternGenerator(graph, seed=seed, unbounded_probability=0.25)
        pattern = generator.generate(4, 5, 3)
        assert match(pattern, graph) == naive_match(pattern, graph)

    def test_cyclic_pattern_against_naive(self, paper_p2_g2):
        pattern, graph = paper_p2_g2
        assert match(pattern, graph) == naive_match(pattern, graph)
