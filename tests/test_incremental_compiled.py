"""Tests for the compiled incremental engine and its edge-semantics hardening.

Covers the PR-2 surface:

* randomized incremental-vs-scratch equivalence for mixed insert/delete
  streams (including repeat-edge batches) over DAG and cyclic patterns, in
  both the legacy and the compiled matcher modes;
* true no-op semantics for deleting missing / inserting existing edges;
* AFF1 netting (``merge_affected`` drops pairs whose net change is
  ``old == new``);
* the snapshot patch layer (``patch_edge_insert``/``patch_edge_delete``/
  ``intern_node``) against full recompilation;
* the weak compile cache (discarded graphs must not leak snapshots);
* the compiled ``UpdateM``/``UpdateBM`` against the legacy matrix repair.
"""

from __future__ import annotations

import gc
import random

import pytest

from repro.distance.incremental import (
    EdgeUpdate,
    merge_affected,
    merge_affected_into,
    update_matrix_batch,
    update_store_batch,
    update_store_delete,
    update_store_insert,
)
from repro.distance.matrix import DistanceMatrix, InternedDistanceStore
from repro.distance.oracle import INF
from repro.exceptions import CyclicPatternError, DistanceOracleError
from repro.graph.compiled import CompiledGraph, compile_graph, _COMPILE_CACHE
from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph
from repro.graph.pattern import Pattern
from repro.graph.pattern_generator import PatternGenerator
from repro.matching.bounded import match
from repro.matching.incremental import IncrementalMatcher


def simple_dag_pattern() -> Pattern:
    pattern = Pattern()
    pattern.add_node("A", "A")
    pattern.add_node("B", "B")
    pattern.add_node("C", "C")
    pattern.add_edge("A", "B", 2)
    pattern.add_edge("B", "C", 2)
    return pattern


def simple_graph() -> DataGraph:
    graph = DataGraph()
    for node, label in [("a1", "A"), ("a2", "A"), ("b1", "B"), ("b2", "B"), ("c1", "C")]:
        graph.add_node(node, label=label)
    graph.add_edge("a1", "b1")
    graph.add_edge("a2", "b2")
    graph.add_edge("b1", "c1")
    graph.add_edge("b2", "c1")
    return graph


def cyclic_pattern() -> Pattern:
    pattern = Pattern()
    pattern.add_node("X", "X")
    pattern.add_node("Y", "Y")
    pattern.add_edge("X", "Y", 2)
    pattern.add_edge("Y", "X", 2)
    return pattern


def mixed_stream(graph, rng, count):
    """A stream mixing deletions, insertions and deliberate repeat edges."""
    updates = []
    nodes = graph.node_list()
    edges = graph.edge_list()
    for _ in range(count):
        roll = rng.random()
        if roll < 0.4 and edges:
            updates.append(EdgeUpdate.delete(*rng.choice(edges)))
        elif roll < 0.8:
            source, target = rng.choice(nodes), rng.choice(nodes)
            if source != target:
                updates.append(EdgeUpdate.insert(source, target))
        elif edges:
            # Delete + re-insert the same edge within one batch: the net
            # AFF1 must cancel out.
            edge = rng.choice(edges)
            updates.append(EdgeUpdate.delete(*edge))
            updates.append(EdgeUpdate.insert(*edge))
    return updates


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_streams_dag_pattern(self, seed):
        rng = random.Random(seed)
        compiled_graph = random_data_graph(20, 45, num_labels=4, seed=seed)
        legacy_graph = compiled_graph.copy()
        generator = PatternGenerator(compiled_graph, seed=seed)
        pattern = generator.generate_dag(4, 5, 3)
        compiled_m = IncrementalMatcher(pattern, compiled_graph, use_compiled=True)
        legacy_m = IncrementalMatcher(pattern, legacy_graph, use_compiled=False)
        for _ in range(4):
            updates = mixed_stream(compiled_graph, rng, 6)
            compiled_area = compiled_m.apply(updates)
            legacy_area = legacy_m.apply(updates)
            assert compiled_area.distance_changes == legacy_area.distance_changes
            assert compiled_area.removed_matches == legacy_area.removed_matches
            assert compiled_area.added_matches == legacy_area.added_matches
            scratch = match(pattern, compiled_graph.copy())
            assert compiled_m.match == scratch
            assert legacy_m.match == scratch

    @pytest.mark.parametrize("seed", range(4))
    def test_deletion_streams_cyclic_pattern(self, seed):
        rng = random.Random(seed)
        graph = random_data_graph(16, 40, num_labels=2, seed=seed)
        # Relabel so the cyclic pattern has candidates.
        for i, node in enumerate(graph.node_list()):
            graph.set_attributes(node, label="X" if i % 2 else "Y")
        legacy_graph = graph.copy()
        pattern = cyclic_pattern()
        compiled_m = IncrementalMatcher(pattern, graph, use_compiled=True)
        legacy_m = IncrementalMatcher(pattern, legacy_graph, use_compiled=False)
        for _ in range(3):
            edges = graph.edge_list()
            updates = [EdgeUpdate.delete(*rng.choice(edges)) for _ in range(4)]
            compiled_area = compiled_m.apply(updates)
            legacy_area = legacy_m.apply(updates)
            assert compiled_area.distance_changes == legacy_area.distance_changes
            assert compiled_area.removed_matches == legacy_area.removed_matches
            scratch = match(pattern, graph.copy())
            assert compiled_m.match == scratch
            assert legacy_m.match == scratch

    def test_matrix_flushes_lazily_to_scratch_state(self):
        graph = random_data_graph(18, 40, num_labels=3, seed=7)
        pattern = PatternGenerator(graph, seed=7).generate_dag(4, 5, 3)
        matcher = IncrementalMatcher(pattern, graph, use_compiled=True)
        matcher.apply(mixed_stream(graph, random.Random(7), 8))
        assert matcher.matrix.equals(DistanceMatrix(graph.copy()))
        assert matcher.matrix.in_sync

    @pytest.mark.parametrize("use_compiled", [True, False])
    def test_cyclic_insert_raises_in_both_modes(self, use_compiled):
        graph = simple_graph()
        for node, label in [("x1", "X"), ("y1", "Y")]:
            graph.add_node(node, label=label)
        graph.add_edge("x1", "y1")
        graph.add_edge("y1", "x1")
        matcher = IncrementalMatcher(cyclic_pattern(), graph, use_compiled=use_compiled)
        with pytest.raises(CyclicPatternError):
            matcher.insert_edge("a1", "x1")

    def test_cyclic_insert_recompute_fallback_equivalence(self):
        graph = simple_graph()
        for node, label in [("x1", "X"), ("y1", "Y"), ("x2", "X")]:
            graph.add_node(node, label=label)
        graph.add_edge("x1", "y1")
        graph.add_edge("y1", "x1")
        legacy_graph = graph.copy()
        pattern = cyclic_pattern()
        compiled_m = IncrementalMatcher(
            pattern, graph, on_cyclic="recompute", use_compiled=True
        )
        legacy_m = IncrementalMatcher(
            pattern, legacy_graph, on_cyclic="recompute", use_compiled=False
        )
        compiled_area = compiled_m.insert_edge("x2", "y1")
        legacy_area = legacy_m.insert_edge("x2", "y1")
        assert compiled_area.distance_changes == legacy_area.distance_changes
        assert compiled_area.added_matches == legacy_area.added_matches
        assert compiled_area.removed_matches == legacy_area.removed_matches
        assert compiled_m.match == legacy_m.match == match(pattern, graph.copy())


class TestNoOpHardening:
    @pytest.mark.parametrize("use_compiled", [True, False])
    def test_delete_missing_edge_is_true_noop(self, use_compiled):
        graph = simple_graph()
        matcher = IncrementalMatcher(
            simple_dag_pattern(), graph, use_compiled=use_compiled
        )
        version = graph.version
        snapshot = DistanceMatrix(graph.copy())
        before = matcher.match
        area = matcher.delete_edge("c1", "a1")
        assert area.aff1_size == 0
        assert not area.removed_matches and not area.added_matches
        assert graph.version == version  # the graph was not mutated
        assert matcher.matrix.equals(snapshot)  # nor the matrix
        assert matcher.match == before

    @pytest.mark.parametrize("use_compiled", [True, False])
    def test_insert_existing_edge_is_true_noop(self, use_compiled):
        graph = simple_graph()
        matcher = IncrementalMatcher(
            simple_dag_pattern(), graph, use_compiled=use_compiled
        )
        version = graph.version
        snapshot = DistanceMatrix(graph.copy())
        before = matcher.match
        area = matcher.insert_edge("a1", "b1")
        assert area.aff1_size == 0
        assert not area.added_matches and not area.removed_matches
        assert graph.version == version
        assert matcher.matrix.equals(snapshot)
        assert matcher.match == before

    def test_insert_existing_edge_does_not_require_dag(self):
        """A no-op insertion must not trip the cyclic-pattern guard."""
        graph = simple_graph()
        graph.add_node("x1", label="X")
        graph.add_node("y1", label="Y")
        graph.add_edge("x1", "y1")
        for use_compiled in (True, False):
            matcher = IncrementalMatcher(
                cyclic_pattern(), graph.copy(), use_compiled=use_compiled
            )
            area = matcher.insert_edge("x1", "y1")  # exists: no CyclicPatternError
            assert area.aff1_size == 0

    @pytest.mark.parametrize("use_compiled", [True, False])
    def test_batch_of_noops_is_empty(self, use_compiled):
        graph = simple_graph()
        matcher = IncrementalMatcher(
            simple_dag_pattern(), graph, use_compiled=use_compiled
        )
        version = graph.version
        area = matcher.apply(
            [
                EdgeUpdate.delete("c1", "a1"),   # missing edge
                EdgeUpdate.insert("a1", "b1"),   # existing edge
                EdgeUpdate.delete("a1", "c1"),   # missing edge
            ]
        )
        assert area.total_size == 0
        assert graph.version == version

    @pytest.mark.parametrize("use_compiled", [True, False])
    def test_repeated_delete_in_one_batch(self, use_compiled):
        """The second deletion of the same edge must be a no-op."""
        graph = simple_graph()
        legacy = graph.copy()
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph, use_compiled=use_compiled)
        updates = [EdgeUpdate.delete("b2", "c1"), EdgeUpdate.delete("b2", "c1")]
        matcher.apply(updates)
        assert matcher.match == match(pattern, graph.copy())
        assert not graph.has_edge("b2", "c1")
        assert legacy.number_of_edges() - graph.number_of_edges() == 1

    @pytest.mark.parametrize("use_compiled", [True, False])
    def test_unknown_endpoints_raise(self, use_compiled):
        graph = simple_graph()
        matcher = IncrementalMatcher(
            simple_dag_pattern(), graph, use_compiled=use_compiled
        )
        with pytest.raises(DistanceOracleError):
            matcher.delete_edge("nope", "c1")
        with pytest.raises(DistanceOracleError):
            matcher.insert_edge("a1", "nope")


class TestAff1Netting:
    @pytest.mark.parametrize("use_compiled", [True, False])
    def test_delete_then_reinsert_nets_to_empty_aff1(self, use_compiled):
        graph = simple_graph()
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph, use_compiled=use_compiled)
        area = matcher.apply(
            [EdgeUpdate.delete("b1", "c1"), EdgeUpdate.insert("b1", "c1")]
        )
        assert area.aff1_size == 0
        assert not area.removed_matches and not area.added_matches
        assert matcher.match == match(pattern, graph.copy())

    def test_merge_affected_drops_netted_pairs(self):
        first = {("a", "b"): (2, INF), ("a", "c"): (3, 4)}
        second = {("a", "b"): (INF, 2), ("a", "c"): (4, 5)}
        merged = merge_affected(first, second)
        assert ("a", "b") not in merged
        assert merged[("a", "c")] == (3, 5)

    def test_merge_affected_drops_degenerate_inputs(self):
        # Defensive: an old == new record must never survive a merge.
        assert merge_affected({}, {("x", "y"): (2, 2)}) == {}
        assert merge_affected({("x", "y"): (2, 2)}, {}) == {}

    def test_affected_area_merge_drops_netted_pairs(self):
        from repro.matching.affected import AffectedArea

        first = AffectedArea(distance_changes={("a", "b"): (2, INF)})
        second = AffectedArea(distance_changes={("a", "b"): (INF, 2)})
        assert first.merge(second).aff1_size == 0

    def test_merge_affected_into_matches_copying_variant(self):
        rng = random.Random(5)
        nodes = list("abcdef")
        steps = []
        for _ in range(6):
            step = {}
            for _ in range(5):
                pair = (rng.choice(nodes), rng.choice(nodes))
                old, new = rng.randint(1, 4), rng.randint(1, 4)
                step[pair] = (old, new)
            steps.append(step)
        copying = {}
        for step in steps:
            copying = merge_affected(copying, step)
        in_place = {}
        for step in steps:
            merge_affected_into(in_place, step)
        assert copying == in_place


class TestCompiledUpdateProcedures:
    @pytest.mark.parametrize("seed", range(5))
    def test_store_batch_matches_matrix_batch(self, seed):
        rng = random.Random(seed)
        graph = random_data_graph(15, 30, num_labels=3, seed=seed)
        legacy_graph = graph.copy()
        matrix = DistanceMatrix(legacy_graph)
        compiled = compile_graph(graph)
        store = InternedDistanceStore.from_matrix(DistanceMatrix(graph), compiled)
        updates = mixed_stream(graph, rng, 8)
        interned = update_store_batch(store, updates)
        legacy = update_matrix_batch(matrix, updates)
        node_of = compiled.node_of
        decoded = {
            (node_of(x), node_of(y)): change for (x, y), change in interned.items()
        }
        assert decoded == legacy

    def test_store_noop_updates_touch_nothing(self):
        graph = simple_graph()
        compiled = compile_graph(graph)
        store = InternedDistanceStore.from_matrix(DistanceMatrix(graph), compiled)
        version = graph.version
        edges = compiled.num_edges
        assert update_store_delete(store, "c1", "a1") == {}
        assert update_store_insert(store, "a1", "b1") == {}
        assert graph.version == version
        assert compiled.num_edges == edges


class TestSnapshotPatching:
    def test_patched_snapshot_equals_recompiled(self):
        rng = random.Random(11)
        graph = random_data_graph(14, 30, num_labels=3, seed=11)
        compiled = CompiledGraph.from_graph(graph)
        for _ in range(10):
            edges = graph.edge_list()
            if rng.random() < 0.5 and edges:
                source, target = rng.choice(edges)
                graph.remove_edge(source, target)
                compiled.patch_edge_delete(source, target)
            else:
                nodes = graph.node_list()
                source, target = rng.choice(nodes), rng.choice(nodes)
                if source == target or graph.has_edge(source, target):
                    continue
                graph.add_edge(source, target)
                compiled.patch_edge_insert(source, target)
        assert compiled.version == graph.version
        fresh = CompiledGraph.from_graph(graph)
        assert compiled.num_edges == fresh.num_edges
        assert compiled.out_nonzero_bits == fresh.out_nonzero_bits
        for node in graph.nodes():
            i = compiled.id_of(node)
            assert set(compiled.successors_indices(i)) == {
                compiled.id_of(s) for s in graph.successors(node)
            }
            assert set(compiled.predecessors_indices(i)) == {
                compiled.id_of(p) for p in graph.predecessors(node)
            }
            assert compiled.out_degree(i) == graph.out_degree(node)
            assert compiled.in_degree(i) == graph.in_degree(node)
            for bound in (1, 2, None):
                assert compiled.decode(
                    compiled.descendants_within_bits(i, bound)
                ) == graph.descendants_within(node, bound)
                assert compiled.decode(
                    compiled.ancestors_within_bits(i, bound)
                ) == graph.ancestors_within(node, bound)

    def test_compile_cache_serves_patched_snapshot_without_recompile(self):
        graph = simple_graph()
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph, use_compiled=True)
        pinned = compile_graph(graph)
        matcher.apply(
            [EdgeUpdate.delete("b2", "c1"), EdgeUpdate.insert("b1", "b2")]
        )
        # The stream patched the pinned snapshot in place; a batch match
        # against the same graph reuses it instead of recompiling.
        assert compile_graph(graph) is pinned
        assert pinned.version == graph.version
        assert matcher.match == match(pattern, graph.copy())

    def test_intern_node_appends_stable_indices(self):
        graph = simple_graph()
        compiled = CompiledGraph.from_graph(graph)
        old_ids = {node: compiled.id_of(node) for node in graph.nodes()}
        old_all_bits = compiled.all_bits
        graph.add_node("z9", label="C")
        index = compiled.intern_node("z9", graph.attributes("z9"))
        assert index == len(old_ids)
        assert compiled.version == graph.version
        for node, i in old_ids.items():
            assert compiled.id_of(node) == i
        assert compiled.all_bits == (old_all_bits << 1) | 1 | old_all_bits
        assert compiled.out_degree(index) == 0
        assert "z9" in compiled
        assert compiled.decode(compiled.encode(["z9"])) == {"z9"}

    def test_out_of_band_node_growth_reinterned_by_matcher(self):
        graph = simple_graph()
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph, use_compiled=True)
        graph.add_node("b3", label="B")
        graph.add_node("a3", label="A")
        area = matcher.apply(
            [EdgeUpdate.insert("a3", "b3"), EdgeUpdate.insert("b3", "c1")]
        )
        assert ("B", "b3") in area.added_matches
        assert ("A", "a3") in area.added_matches
        assert matcher.match == match(pattern, graph.copy())

    def test_out_of_band_edge_mutation_triggers_full_repin(self):
        graph = simple_graph()
        pattern = simple_dag_pattern()
        matcher = IncrementalMatcher(pattern, graph, use_compiled=True)
        # Mutate behind the matcher's back: the next operation must re-pin
        # and repair rather than trust the stale snapshot.
        graph.remove_edge("b2", "c1")
        area = matcher.delete_edge("b1", "c1")
        assert area is not None
        assert matcher.match == match(pattern, graph.copy())


class TestWeakCompileCache:
    def test_discarded_graphs_do_not_leak_snapshots(self):
        baseline = len(_COMPILE_CACHE)
        for seed in range(30):
            graph = random_data_graph(8, 12, num_labels=2, seed=seed)
            compile_graph(graph)
            del graph
        gc.collect()
        assert len(_COMPILE_CACHE) <= baseline + 1

    def test_snapshot_does_not_keep_graph_alive(self):
        graph = random_data_graph(8, 12, num_labels=2, seed=3)
        snapshot = compile_graph(graph)
        del graph
        gc.collect()
        assert snapshot.graph is None
