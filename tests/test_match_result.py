"""Unit tests for MatchResult (repro.matching.match_result)."""

from __future__ import annotations

import pytest

from repro.graph.pattern import Pattern
from repro.matching.match_result import MatchResult


@pytest.fixture
def simple_pattern():
    pattern = Pattern()
    pattern.add_node("A", "A")
    pattern.add_node("B", "B")
    pattern.add_edge("A", "B", 2)
    return pattern


class TestConstruction:
    def test_total_relation(self):
        result = MatchResult({"A": {"x"}, "B": {"y", "z"}})
        assert result
        assert not result.is_empty
        assert len(result) == 3

    def test_missing_pattern_node_makes_relation_empty(self, simple_pattern):
        result = MatchResult({"A": {"x"}}, pattern_nodes=simple_pattern.node_list())
        assert result.is_empty
        assert len(result) == 0

    def test_empty_set_makes_relation_empty(self):
        result = MatchResult({"A": {"x"}, "B": set()})
        assert result.is_empty

    def test_empty_constructor(self):
        assert MatchResult.empty().is_empty

    def test_from_pairs(self, simple_pattern):
        result = MatchResult.from_pairs(
            [("A", "x"), ("B", "y"), ("A", "w")], pattern=simple_pattern
        )
        assert result.matches("A") == {"x", "w"}
        assert result.matches("B") == {"y"}

    def test_from_pairs_incomplete_is_empty(self, simple_pattern):
        result = MatchResult.from_pairs([("A", "x")], pattern=simple_pattern)
        assert result.is_empty


class TestQueries:
    def test_contains_and_getitem(self):
        result = MatchResult({"A": {"x"}, "B": {"y"}})
        assert result.contains("A", "x")
        assert ("A", "x") in result
        assert not result.contains("A", "y")
        assert result["B"] == {"y"}
        assert result.matches("missing") == frozenset()

    def test_pairs_iteration(self):
        result = MatchResult({"A": {"x"}, "B": {"y", "z"}})
        assert set(result.pairs()) == {("A", "x"), ("B", "y"), ("B", "z")}

    def test_matched_data_nodes_and_pattern_nodes(self):
        result = MatchResult({"A": {"x"}, "B": {"x", "y"}})
        assert result.matched_data_nodes() == {"x", "y"}
        assert result.pattern_nodes() == {"A", "B"}

    def test_counting_helpers(self):
        result = MatchResult({"A": {"x"}, "B": {"y", "z"}})
        assert result.total_matches() == 3
        assert result.matches_per_pattern_node() == {"A": 1, "B": 2}
        assert result.average_matches_per_pattern_node() == pytest.approx(1.5)
        assert MatchResult.empty().average_matches_per_pattern_node() == 0.0

    def test_as_dict_and_to_dict(self):
        result = MatchResult({"A": {"x"}})
        assert result.as_dict() == {"A": frozenset({"x"})}
        with pytest.deprecated_call():
            assert result.to_dict() == {"A": ["x"]}


class TestComparison:
    def test_equality_and_hash(self):
        r1 = MatchResult({"A": {"x"}, "B": {"y"}})
        r2 = MatchResult({"B": {"y"}, "A": {"x"}})
        assert r1 == r2
        assert hash(r1) == hash(r2)
        assert r1 != MatchResult({"A": {"x"}, "B": {"z"}})

    def test_subrelation(self):
        small = MatchResult({"A": {"x"}, "B": {"y"}})
        large = MatchResult({"A": {"x", "w"}, "B": {"y"}})
        assert small.is_subrelation_of(large)
        assert not large.is_subrelation_of(small)

    def test_difference_and_symmetric_difference(self):
        r1 = MatchResult({"A": {"x"}, "B": {"y"}})
        r2 = MatchResult({"A": {"x"}, "B": {"z"}})
        assert r1.difference(r2) == {("B", "y")}
        assert r1.symmetric_difference(r2) == {("B", "y"), ("B", "z")}

    def test_repr(self):
        assert "empty" in repr(MatchResult.empty())
        assert "pairs" in repr(MatchResult({"A": {"x"}}))


class TestEmptyPatternNodes:
    def test_empty_carries_pattern_nodes(self):
        result = MatchResult.empty(["A", "B"])
        assert result.is_empty
        assert result.pattern_nodes() == {"A", "B"}

    def test_default_empty_has_no_pattern_nodes(self):
        assert MatchResult.empty().pattern_nodes() == frozenset()

    def test_non_total_mapping_keeps_required_nodes(self):
        result = MatchResult({"A": {"x"}}, pattern_nodes=["A", "B"])
        assert result.is_empty
        assert result.pattern_nodes() == {"A", "B"}

    def test_empty_results_distinguish_pattern_shape(self):
        # Equality covers the pattern node set: an empty answer for a
        # 1-node pattern is not the same answer as for a 2-node pattern.
        assert MatchResult.empty(["A"]) != MatchResult.empty(["B"])
        assert MatchResult.empty(["A", "B", "C"]) != MatchResult.empty(
            ["A", "B", "C", "D", "E"]
        )
        assert MatchResult.empty(["A", "B"]) == MatchResult.empty(["B", "A"])
        assert hash(MatchResult.empty(["A", "B"])) == hash(
            MatchResult.empty(["B", "A"])
        )

    def test_hash_consistent_with_eq_for_empty_results(self):
        # Distinct pattern shapes may not collapse into one set/dict slot.
        results = {MatchResult.empty(["A"]), MatchResult.empty(["A", "B"])}
        assert len(results) == 2

    def test_non_empty_equality_still_ignores_construction_route(self):
        # For total relations the mapping keys ARE the pattern nodes, so
        # passing pattern_nodes explicitly must not change equality.
        implicit = MatchResult({"A": {"x"}})
        explicit = MatchResult({"A": {"x"}}, pattern_nodes=["A"])
        assert implicit == explicit
        assert hash(implicit) == hash(explicit)
