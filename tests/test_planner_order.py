"""The cost-based planner: cardinality estimates, edge order, ordered kernel.

Three layers are pinned here:

* the **stats surface** — ``CompiledGraph.cardinality`` (version-pinned
  index popcounts) and :func:`repro.graph.statistics.index_statistics`;
* the **plan** — ``plan_query(..., compiled=...)`` fills
  ``QueryPlan.cardinalities`` / ``edge_order`` / ``order_digest``, the
  digest feeds the session cache key, and ``explain()`` shows the why;
* the **kernel** — ``refine_bits_to_fixpoint(..., edge_order=...)``
  computes the same greatest fixpoint as the seed order (chaotic iteration
  of a monotone operator is order-independent), checked on randomized
  graph/pattern populations including cycles and unbounded edges.
"""

from __future__ import annotations

import pytest

from repro.distance.compiled import CompiledDistanceMatrix
from repro.engine import MatchSession
from repro.engine.planner import SEED_ORDER, STRATEGY_BOUNDED, plan_query
from repro.graph.compiled import compile_graph
from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph, skewed_label_graph
from repro.graph.pattern import Pattern
from repro.graph.pattern_generator import PatternGenerator
from repro.graph.predicates import TRUE, parse_predicate
from repro.graph.statistics import (
    estimate_cardinality,
    index_statistics,
    strongly_connected_components,
)
from repro.matching.bounded import candidate_bits, refine_bits_to_fixpoint
from repro.workloads.patterns import skewed_chain_workload


def labelled_graph() -> DataGraph:
    graph = DataGraph(name="labelled")
    for index in range(9):
        graph.add_node(f"n{index}", label="common" if index < 6 else "rare")
    for index in range(8):
        graph.add_edge(f"n{index}", f"n{index + 1}")
    return graph


def chain_star_pattern(bound: int = 2) -> Pattern:
    pattern = Pattern(name="chain-star")
    pattern.add_node("u0", "common")
    pattern.add_node("u1", "common")
    pattern.add_node("leaf", "rare")
    pattern.add_edge("u0", "u1", bound)
    pattern.add_edge("u1", "leaf", bound)
    return pattern


# ----------------------------------------------------------------------
# stats surface
# ----------------------------------------------------------------------


class TestCardinality:
    def test_equality_atom_uses_index_popcount(self):
        compiled = compile_graph(labelled_graph())
        assert compiled.cardinality(parse_predicate({"label": "common"})) == 6
        assert compiled.cardinality(parse_predicate({"label": "rare"})) == 3
        assert compiled.cardinality(parse_predicate({"label": "absent"})) == 0

    def test_wildcard_estimates_all_nodes(self):
        compiled = compile_graph(labelled_graph())
        assert compiled.cardinality(TRUE) == compiled.num_nodes

    def test_non_indexable_atoms_keep_the_upper_bound(self):
        # `>` atoms are not index-resolvable; the estimate must stay an
        # upper bound (here: no indexed atom at all -> |V|).
        graph = labelled_graph()
        for index, node in enumerate(graph.nodes()):
            graph.set_attributes(node, age=index)
        compiled = compile_graph(graph)
        estimate = compiled.cardinality(parse_predicate("age > 3"))
        assert estimate == compiled.num_nodes

    def test_conjunction_takes_the_indexed_minimum(self):
        graph = labelled_graph()
        for index, node in enumerate(sorted(graph.nodes(), key=str)):
            graph.set_attributes(node, parity="even" if index % 2 == 0 else "odd")
        compiled = compile_graph(graph)
        both = compiled.cardinality(parse_predicate({"label": "rare", "parity": "even"}))
        assert both <= 3
        assert both == len(
            [
                node
                for node in graph.nodes()
                if graph.attributes(node).get("label") == "rare"
                and graph.attributes(node).get("parity") == "even"
            ]
        )

    def test_estimate_is_memoised_per_version(self):
        compiled = compile_graph(labelled_graph())
        predicate = parse_predicate({"label": "common"})
        first = compiled.cardinality(predicate)
        assert compiled.cardinality(predicate) == first
        assert estimate_cardinality(compiled, predicate) == first


class TestIndexStatistics:
    def test_counts_and_top_pairs(self):
        stats = index_statistics(compile_graph(labelled_graph()))
        assert stats.num_nodes == 9
        assert stats.num_edges == 8
        top = dict(stats.top_pairs)
        assert top[("label", "common")] == 6
        assert top[("label", "rare")] == 3
        assert stats.max_bucket == 6
        assert stats.as_row()

    def test_scc_wrapper_is_sinks_first(self):
        pattern = Pattern()
        for name in ("a", "b", "c"):
            pattern.add_node(name, "x")
        pattern.add_edge("a", "b", 1)
        pattern.add_edge("b", "c", 1)
        components = strongly_connected_components(pattern)
        assert [sorted(component) for component in components] == [["c"], ["b"], ["a"]]


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------


class TestPlanOrdering:
    def test_plan_orders_rare_leaf_first(self):
        graph = labelled_graph()
        compiled = compile_graph(graph)
        plan = plan_query(chain_star_pattern(), snapshot_version=0, compiled=compiled)
        assert plan.strategy == STRATEGY_BOUNDED
        assert dict(plan.cardinalities) == {"u0": 6, "u1": 6, "leaf": 3}
        # Sinks first: the leaf edge seeds before the chain edge.
        assert plan.edge_order == (("u1", "leaf"), ("u0", "u1"))
        assert plan.order_digest.startswith("sel:")

    def test_near_uniform_estimates_keep_seed_order(self):
        # Ordering buys nothing when every candidate set is the same size,
        # and would stop the edge-seed memo from being shared across
        # queries — the planner must keep the seed order below the skew
        # threshold.
        graph = DataGraph()
        for index in range(8):
            graph.add_node(f"n{index}", label="even" if index % 2 == 0 else "odd")
        for index in range(7):
            graph.add_edge(f"n{index}", f"n{index + 1}")
        pattern = Pattern()
        pattern.add_node("a", "even")
        pattern.add_node("b", "odd")
        pattern.add_edge("a", "b", 2)
        plan = plan_query(pattern, snapshot_version=0, compiled=compile_graph(graph))
        assert dict(plan.cardinalities) == {"a": 4, "b": 4}
        assert plan.edge_order == ()
        assert plan.order_digest == SEED_ORDER
        assert "near-uniform" in plan.explain()

    def test_without_compiled_stays_seed_order(self):
        plan = plan_query(chain_star_pattern(), snapshot_version=0)
        assert plan.cardinalities == ()
        assert plan.edge_order == ()
        assert plan.order_digest == SEED_ORDER

    def test_opt_out_flag_stays_seed_order(self):
        compiled = compile_graph(labelled_graph())
        plan = plan_query(
            chain_star_pattern(),
            snapshot_version=0,
            compiled=compiled,
            selectivity_order=False,
        )
        assert plan.edge_order == ()
        assert plan.order_digest == SEED_ORDER

    def test_cache_key_is_order_sensitive(self):
        compiled = compile_graph(labelled_graph())
        pattern = chain_star_pattern()
        ordered = plan_query(pattern, snapshot_version=0, compiled=compiled)
        seed = plan_query(
            pattern, snapshot_version=0, compiled=compiled, selectivity_order=False
        )
        assert ordered.fingerprint == seed.fingerprint
        assert ordered.cache_key != seed.cache_key
        # ResultCache.evict_stale reads key[1]: the snapshot version must
        # stay at index 1 of the (now 4-tuple) cache key.
        assert ordered.cache_key[1] == 0
        assert len(ordered.cache_key) == 4

    def test_explain_shows_estimates_order_and_digest(self):
        compiled = compile_graph(labelled_graph())
        plan = plan_query(chain_star_pattern(), snapshot_version=0, compiled=compiled)
        text = plan.explain()
        assert "estimated candidates (index popcounts)" in text
        assert "leaf~3" in text
        assert "refinement order: u1->leaf, u0->u1" in text
        assert "/sel:" in text
        assert "selectivity" in text

    def test_session_plan_carries_the_order(self):
        with MatchSession(labelled_graph()) as session:
            plan = session.plan(chain_star_pattern())
            assert plan.edge_order == (("u1", "leaf"), ("u0", "u1"))
            assert "refinement order" in session.explain(chain_star_pattern())

    def test_session_opt_out(self):
        with MatchSession(labelled_graph(), selectivity_order=False) as session:
            assert session.plan(chain_star_pattern()).order_digest == SEED_ORDER


# ----------------------------------------------------------------------
# the ordered kernel
# ----------------------------------------------------------------------


def kernel_fixpoint(pattern: Pattern, graph: DataGraph, edge_order=None):
    oracle = CompiledDistanceMatrix(graph)
    compiled = oracle.snapshot
    mat_bits = candidate_bits(pattern, compiled)
    refine_bits_to_fixpoint(pattern, oracle, compiled, mat_bits, edge_order=edge_order)
    return mat_bits


class TestOrderedKernelEquivalence:
    def test_ordered_equals_seed_on_chain_star(self):
        graph = labelled_graph()
        pattern = chain_star_pattern()
        baseline = kernel_fixpoint(pattern, graph)
        ordered = kernel_fixpoint(
            pattern, graph, edge_order=[("u1", "leaf"), ("u0", "u1")]
        )
        assert ordered == baseline

    def test_stale_order_falls_back_to_seed(self):
        # An edge_order that does not cover the pattern's edges exactly
        # (stale plan for a mutated pattern) must be ignored, not crash.
        graph = labelled_graph()
        pattern = chain_star_pattern()
        baseline = kernel_fixpoint(pattern, graph)
        assert kernel_fixpoint(pattern, graph, edge_order=[("u0", "u1")]) == baseline
        assert (
            kernel_fixpoint(
                pattern, graph, edge_order=[("u0", "u1"), ("u0", "leaf")]
            )
            == baseline
        )

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_randomized_sessions_agree(self, seed):
        graph = random_data_graph(220, 700, num_labels=6, seed=seed)
        generator = PatternGenerator(graph, seed=seed)
        patterns = []
        for index in range(6):
            bound = 1 + index % 3
            # Mix DAGs and potentially cyclic patterns.
            if index % 2:
                patterns.append(generator.generate(4, 5, bound))
            else:
                patterns.append(generator.generate_dag(4, 4, bound))
        with MatchSession(graph) as ordered_session, MatchSession(
            graph, selectivity_order=False
        ) as seed_session:
            for pattern in patterns:
                ordered = ordered_session.match(pattern)
                baseline = seed_session.match(pattern)
                assert ordered.as_dict() == baseline.as_dict()

    def test_skewed_workload_sessions_agree(self):
        graph = skewed_label_graph(600, 1800, num_labels=12, skew=1.3, seed=5)
        patterns = skewed_chain_workload(graph, num_patterns=4, bound=2, seed=5)
        with MatchSession(graph) as ordered_session, MatchSession(
            graph, selectivity_order=False
        ) as seed_session:
            for pattern in patterns:
                assert (
                    ordered_session.match(pattern).as_dict()
                    == seed_session.match(pattern).as_dict()
                )

    def test_cyclic_pattern_keeps_counting_path(self):
        # A pattern cycle can never be "final" edge-by-edge; the ordered
        # kernel must still converge to the seed-order fixpoint.
        graph = DataGraph()
        for index in range(6):
            graph.add_node(f"n{index}", label="x")
        for index in range(6):
            graph.add_edge(f"n{index}", f"n{(index + 1) % 6}")
        pattern = Pattern()
        pattern.add_node("a", "x")
        pattern.add_node("b", "x")
        pattern.add_edge("a", "b", 2)
        pattern.add_edge("b", "a", 2)
        baseline = kernel_fixpoint(pattern, graph)
        ordered = kernel_fixpoint(pattern, graph, edge_order=[("b", "a"), ("a", "b")])
        assert ordered == baseline


# ----------------------------------------------------------------------
# session cache + intra-query fallback satellites
# ----------------------------------------------------------------------


class TestSessionIntegration:
    def test_repeat_queries_hit_cache_under_ordering(self):
        graph = labelled_graph()
        pattern = chain_star_pattern()
        with MatchSession(graph) as session:
            first = session.match(pattern)
            second = session.match(pattern)
            assert first.as_dict() == second.as_dict()
            assert session.stats()["cache_hits"] >= 1

    def test_stats_expose_intra_fallbacks(self):
        with MatchSession(labelled_graph()) as session:
            assert session.stats()["intra_fallbacks"] == 0

    def test_estimate_ball_size(self):
        compiled = compile_graph(labelled_graph())
        # 9 nodes / 8 edges: avg degree < 1, so balls stay tiny.
        assert 1 <= MatchSession._estimate_ball_size(compiled, 2) <= 3
        assert MatchSession._estimate_ball_size(compiled, None) == 9
        empty = compile_graph(DataGraph())
        assert MatchSession._estimate_ball_size(empty, 3) == 0

    def test_pattern_fingerprint_is_memoised_and_invalidated(self):
        pattern = chain_star_pattern()
        first = pattern.fingerprint()
        assert pattern.fingerprint() == first
        assert pattern._fingerprint is not None
        pattern.add_node("extra", "rare")
        assert pattern._fingerprint is None
        assert pattern.fingerprint() != first
