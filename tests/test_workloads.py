"""Tests for the workload generators (repro.workloads)."""

from __future__ import annotations

import pytest

from repro.datasets import youtube_graph
from repro.exceptions import GraphError
from repro.graph.generators import random_data_graph
from repro.matching.bounded import match
from repro.workloads.patterns import (
    pattern_suite,
    youtube_example_pattern,
    youtube_fig6a_pattern_p1,
    youtube_fig6a_pattern_p2,
    youtube_sample_patterns,
)
from repro.workloads.updates import (
    mixed_updates,
    random_deletions,
    random_insertions,
    split_batches,
)


@pytest.fixture
def graph():
    return random_data_graph(30, 90, seed=3)


class TestUpdateWorkloads:
    def test_random_deletions_reference_existing_edges(self, graph):
        updates = random_deletions(graph, 10, seed=1)
        assert len(updates) == 10
        assert len({(u.source, u.target) for u in updates}) == 10
        assert all(update.is_delete for update in updates)
        assert all(graph.has_edge(update.source, update.target) for update in updates)

    def test_random_deletions_do_not_mutate_graph(self, graph):
        edges_before = graph.number_of_edges()
        random_deletions(graph, 5, seed=2)
        assert graph.number_of_edges() == edges_before

    def test_too_many_deletions_rejected(self, graph):
        with pytest.raises(GraphError):
            random_deletions(graph, graph.number_of_edges() + 1)

    def test_random_insertions_are_new_distinct_non_loops(self, graph):
        updates = random_insertions(graph, 10, seed=3)
        assert len(updates) == 10
        assert all(update.is_insert for update in updates)
        pairs = {(u.source, u.target) for u in updates}
        assert len(pairs) == 10
        for source, target in pairs:
            assert source != target
            assert not graph.has_edge(source, target)

    def test_insertions_on_tiny_graph_rejected(self):
        from repro.graph.datagraph import DataGraph

        lonely = DataGraph()
        lonely.add_node(1)
        with pytest.raises(GraphError):
            random_insertions(lonely, 1)

    def test_insertions_on_complete_graph_rejected(self):
        graph = random_data_graph(4, 12, seed=4)  # complete digraph on 4 nodes
        with pytest.raises(GraphError):
            random_insertions(graph, 2, seed=4)

    def test_mixed_updates_ratio(self, graph):
        updates = mixed_updates(graph, 20, insert_ratio=0.25, seed=5)
        assert len(updates) == 20
        inserts = sum(1 for update in updates if update.is_insert)
        assert inserts == 5

    def test_mixed_updates_deterministic(self, graph):
        assert mixed_updates(graph, 10, seed=6) == mixed_updates(graph, 10, seed=6)

    def test_split_batches(self, graph):
        updates = mixed_updates(graph, 10, seed=7)
        batches = split_batches(updates, 4)
        assert [len(batch) for batch in batches] == [4, 4, 2]
        with pytest.raises(ValueError):
            split_batches(updates, 0)


class TestPatternWorkloads:
    def test_youtube_sample_patterns_shape(self):
        patterns = youtube_sample_patterns()
        assert len(patterns) == 3
        assert youtube_example_pattern().number_of_nodes() == 5
        assert youtube_fig6a_pattern_p1().number_of_edges() == 3
        assert youtube_fig6a_pattern_p2().number_of_nodes() == 4

    def test_sample_patterns_match_the_substitute(self):
        graph = youtube_graph(scale=0.05, seed=7)
        matched = sum(1 for pattern in youtube_sample_patterns() if match(pattern, graph))
        assert matched >= 2  # the substitute supports the paper's sample patterns

    def test_pattern_suite_counts(self, graph):
        suite = pattern_suite(graph, [(3, 3, 2), (4, 4, 2)], patterns_per_spec=3, seed=8)
        assert set(suite) == {(3, 3, 2), (4, 4, 2)}
        assert all(len(patterns) == 3 for patterns in suite.values())
        for (num_nodes, num_edges, _), patterns in suite.items():
            for pattern in patterns:
                assert pattern.number_of_nodes() == num_nodes
                assert pattern.number_of_edges() == num_edges

    def test_pattern_suite_dag_only(self, graph):
        suite = pattern_suite(graph, [(4, 5, 2)], patterns_per_spec=2, seed=9, dag_only=True)
        assert all(pattern.is_dag() for pattern in suite[(4, 5, 2)])
