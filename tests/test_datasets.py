"""Tests for the real-life dataset substitutes (repro.datasets)."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DATASET_BUILDERS,
    PAPER_SIZES,
    load_dataset,
    matter_graph,
    pblog_graph,
    youtube_graph,
)
from repro.exceptions import DatasetError
from repro.graph.statistics import compute_statistics


class TestRegistry:
    def test_all_three_datasets_registered(self):
        assert set(DATASET_BUILDERS) == {"YouTube", "Matter", "PBlog"}
        assert set(PAPER_SIZES) == set(DATASET_BUILDERS)

    def test_load_dataset_dispatch(self):
        graph = load_dataset("PBlog", scale=0.05, seed=1)
        assert graph.name.startswith("PBlog")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("Flickr")

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            youtube_graph(scale=0)


@pytest.mark.parametrize("name", ["YouTube", "Matter", "PBlog"])
class TestGeneratedShape:
    def test_scaled_sizes_track_paper_sizes(self, name):
        scale = 0.05
        graph = DATASET_BUILDERS[name](scale=scale, seed=2)
        expected_nodes = int(round(PAPER_SIZES[name]["nodes"] * scale))
        assert abs(graph.number_of_nodes() - expected_nodes) <= 2
        # Edge counts track the paper's density within a loose factor (the
        # generators are random and reciprocation saturates on tiny graphs).
        expected_edges = PAPER_SIZES[name]["edges"] * scale
        assert graph.number_of_edges() >= 0.4 * expected_edges
        assert graph.number_of_edges() <= 2.0 * expected_edges

    def test_deterministic_per_seed(self, name):
        g1 = DATASET_BUILDERS[name](scale=0.03, seed=5)
        g2 = DATASET_BUILDERS[name](scale=0.03, seed=5)
        assert set(g1.edges()) == set(g2.edges())
        assert all(g1.attributes(n) == g2.attributes(n) for n in g1.nodes())

    def test_every_node_has_a_label(self, name):
        graph = DATASET_BUILDERS[name](scale=0.03, seed=6)
        assert all("label" in graph.attributes(node) for node in graph.nodes())


class TestYouTubeAttributes:
    @pytest.fixture(scope="class")
    def graph(self):
        return youtube_graph(scale=0.05, seed=7)

    def test_attribute_schema(self, graph):
        required = {"category", "uploader", "length", "rate", "age", "views", "comments", "ratings"}
        for node in list(graph.nodes())[:50]:
            assert required <= set(graph.attributes(node))

    def test_named_uploaders_present(self, graph):
        uploaders = {graph.attribute(node, "uploader") for node in graph.nodes()}
        assert {"FWPB", "Ascrodin", "neil010", "Gisburgh"} <= uploaders

    def test_rate_in_range(self, graph):
        assert all(1.0 <= graph.attribute(node, "rate") <= 5.0 for node in graph.nodes())

    def test_heavy_tailed_degrees(self, graph):
        stats = compute_statistics(graph)
        assert stats.max_in_degree > 5 * stats.avg_out_degree


class TestMatterAndPBlogAttributes:
    def test_matter_schema(self):
        graph = matter_graph(scale=0.02, seed=8)
        node = next(iter(graph.nodes()))
        assert {"area", "papers", "seniority"} <= set(graph.attributes(node))

    def test_pblog_schema_and_leanings(self):
        graph = pblog_graph(scale=0.3, seed=9)
        leanings = {graph.attribute(node, "leaning") for node in graph.nodes()}
        assert leanings == {"liberal", "conservative"}
