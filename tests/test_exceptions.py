"""Tests for the exception hierarchy (repro.exceptions)."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions as exc


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in exc.__all__:
            error_cls = getattr(exc, name)
            assert issubclass(error_cls, exc.ReproError)

    def test_lookup_errors_are_also_key_errors(self):
        assert issubclass(exc.NodeNotFoundError, KeyError)
        assert issubclass(exc.EdgeNotFoundError, KeyError)

    def test_value_errors(self):
        assert issubclass(exc.DuplicateNodeError, ValueError)
        assert issubclass(exc.InvalidBoundError, ValueError)
        assert issubclass(exc.PredicateError, ValueError)

    def test_cyclic_pattern_error_is_incremental_and_matching_error(self):
        assert issubclass(exc.CyclicPatternError, exc.IncrementalError)
        assert issubclass(exc.CyclicPatternError, exc.MatchingError)

    def test_messages(self):
        assert "ghost" in str(exc.NodeNotFoundError("ghost"))
        assert "('a', 'b')" in str(exc.EdgeNotFoundError("a", "b")) or "a" in str(
            exc.EdgeNotFoundError("a", "b")
        )
        assert "already" in str(exc.DuplicateNodeError("x"))
        assert "bound" in str(exc.InvalidBoundError(0))

    def test_exported_from_package_root(self):
        assert repro.ReproError is exc.ReproError
        assert repro.CyclicPatternError is exc.CyclicPatternError

    def test_catching_library_errors_with_base_class(self, tiny_graph):
        with pytest.raises(exc.ReproError):
            tiny_graph.successors("ghost")
