"""Chaos equivalence suite (repro.reliability.chaos).

The ground truth under test: **no matter which injected faults fire, pooled
results are identical to serial execution**.  Structure:

* a seed matrix of mixed-fault chaos runs (the acceptance gate);
* targeted runs that fire each fault kind deterministically (rate 1 with a
  per-process cap), so every detection/recovery path is provably covered —
  crash, hang, queue stall, result corruption, task corruption, snapshot
  skew, cache pressure, and shared-memory attach failure on spawn;
* the degradation layer: circuit-breaker trip + half-open recovery on a
  fake clock, and the batch time budget's ``PartialBatchError``.
"""

from __future__ import annotations

import pytest

from repro.engine import MatchSession, fork_available
from repro.exceptions import PartialBatchError
from repro.graph.generators import random_data_graph
from repro.matching.bounded import match
from repro.reliability import faults
from repro.reliability.chaos import DEFAULT_CHAOS_PLAN, run_chaos
from repro.reliability.faults import FaultPlan
from repro.reliability.resilience import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    CircuitBreaker,
    RetryPolicy,
)
from repro.workloads.patterns import engine_batch_workload

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="the chaos suite drives the fork start method"
)

CHAOS_SEEDS = [101, 202, 303, 404, 505]


@pytest.fixture(autouse=True)
def _disarmed():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture
def chaos_graph():
    return random_data_graph(250, 750, num_labels=8, seed=31)


@pytest.fixture
def chaos_patterns(chaos_graph):
    return engine_batch_workload(chaos_graph, num_patterns=5, seed=33)


def fresh_graph(seed=31):
    return random_data_graph(250, 750, num_labels=8, seed=seed)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# the seed matrix
# ----------------------------------------------------------------------


class TestSeedMatrix:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_mixed_fault_schedule_survives(self, seed):
        # A fresh graph per seed: mutation rounds must not leak across
        # parametrized cases.
        graph = fresh_graph()
        patterns = engine_batch_workload(graph, num_patterns=5, seed=33)
        report = run_chaos(
            graph, patterns, seed=seed, plan=DEFAULT_CHAOS_PLAN, rounds=2
        )
        assert report.survived, f"seed {seed}: mismatches {report.mismatches}"
        assert report.rounds == 2 and report.queries == len(patterns)
        # The run must be adversarial, not a no-op: at least one fault
        # evaluation stream fired somewhere (parent counters or worker
        # notes or crash/kill accounting).
        activity = (
            sum(report.injections.values())
            + sum(report.reliability["worker_fault_notes"].values())
            + report.reliability["worker_crashes"]
            + report.reliability["deadline_kills"]
        )
        assert activity >= 1, f"seed {seed} injected nothing"

    def test_report_round_trips_to_dict(self, chaos_graph, chaos_patterns):
        report = run_chaos(
            chaos_graph, chaos_patterns, seed=11, rounds=1, mutate=False
        )
        payload = report.to_dict()
        assert payload["survived"] is report.survived
        assert payload["seed"] == 11
        assert set(payload) >= {
            "plan",
            "rounds",
            "queries",
            "mismatches",
            "injections",
            "reliability",
            "pool",
        }


# ----------------------------------------------------------------------
# targeted fault-kind coverage (deterministic: rate 1, per-process caps)
# ----------------------------------------------------------------------


class TestFaultKindCoverage:
    def run_targeted(self, spec, seed=7, **kwargs):
        graph = fresh_graph()
        patterns = engine_batch_workload(graph, num_patterns=4, seed=33)
        report = run_chaos(
            graph,
            patterns,
            seed=seed,
            plan=spec,
            rounds=1,
            mutate=False,
            **kwargs,
        )
        assert report.survived, f"{spec}: mismatches {report.mismatches}"
        return report

    def test_worker_crash_is_healed(self):
        report = self.run_targeted("worker.crash#1")
        assert report.reliability["worker_crashes"] >= 1

    def test_worker_hang_hits_the_deadline_kill_path(self):
        report = self.run_targeted("worker.hang#1~5")
        assert report.reliability["deadline_kills"] >= 1
        assert report.reliability["quarantined"] >= 1
        assert report.reliability["worker_fault_notes"].get("worker.hang", 0) >= 1

    def test_queue_stall_is_redispatched(self):
        report = self.run_targeted("queue.stall#1")
        assert report.reliability["worker_fault_notes"].get("queue.stall", 0) >= 1
        assert (
            report.reliability["deadline_kills"] >= 1
            or report.reliability["retries"] >= 1
            or report.pool["serial_fallbacks"] >= 1
        )

    def test_result_corruption_is_rejected_and_retried(self):
        report = self.run_targeted("result.corrupt#1")
        assert report.reliability["corrupt_results"] >= 1
        assert (
            report.reliability["retries"] >= 1
            or report.pool["serial_fallbacks"] >= 1
        )

    def test_task_corruption_is_recovered(self):
        report = self.run_targeted("task.corrupt#1")
        assert report.injections.get("task.corrupt", 0) >= 1

    def test_snapshot_skew_degrades_to_stale_serial(self):
        report = self.run_targeted("snapshot.skew#2")
        assert report.injections.get("snapshot.skew", 0) >= 1
        assert report.pool["stale_tasks"] >= 1
        assert report.pool["serial_fallbacks"] >= 1

    def test_cache_pressure_sheds_and_recomputes(self):
        report = self.run_targeted("cache.pressure")
        assert report.injections.get("cache.pressure", 0) >= 1
        assert report.reliability["cache_pressure_sheds"] >= 1

    def test_attach_failure_on_spawn_workers(self):
        # Spawn workers arm from REPRO_FAULTS (exported by run_chaos) and
        # fail CompiledGraph.attach_shared during startup; the batch must
        # still complete and match serial.
        report = self.run_targeted(
            "attach.fail@0.75",
            start_method="spawn",
            task_timeout=1.0,
            retry_policy=RetryPolicy(max_retries=0),
        )
        assert (
            report.reliability["worker_fault_notes"].get("attach.fail", 0) >= 1
            or report.reliability["worker_crashes"] >= 1
        )


# ----------------------------------------------------------------------
# degradation: circuit breaker + batch budget
# ----------------------------------------------------------------------


class TestDegradation:
    def test_breaker_trips_degrades_and_recovers(self, chaos_graph):
        workloads = [
            engine_batch_workload(chaos_graph, num_patterns=3, seed=s)
            for s in (41, 43, 47, 53)
        ]
        expected = [
            [match(p, chaos_graph) for p in workload] for workload in workloads
        ]
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=30.0, clock=clock)
        with MatchSession(chaos_graph, breaker=breaker) as session:
            session.worker_pool(
                max_workers=2,
                task_timeout=0.5,
                retry_policy=RetryPolicy(max_retries=0),
            )
            # Two consecutive crash-storm batches trip the breaker.
            faults.arm(FaultPlan.parse("worker.crash", seed=3))
            try:
                for index in (0, 1):
                    got = session.match_many(workloads[index], parallel=True)
                    assert [r.as_dict() for r in got] == [
                        r.as_dict() for r in expected[index]
                    ]
            finally:
                faults.disarm()
            assert breaker.state == BREAKER_OPEN
            assert breaker.trips == 1
            # While open, the pool path is bypassed: the batch degrades to
            # serial (still correct) and is counted.
            got = session.match_many(workloads[2], parallel=True)
            assert [r.as_dict() for r in got] == [
                r.as_dict() for r in expected[2]
            ]
            stats = session.stats()["reliability"]
            assert stats["degraded_batches"] == 1
            assert stats["breaker"]["state"] == BREAKER_OPEN
            # After the cool-down the half-open probe runs pooled (faults
            # disarmed now), succeeds, and closes the breaker.
            clock.advance(30.0)
            got = session.match_many(workloads[3], parallel=True)
            assert [r.as_dict() for r in got] == [
                r.as_dict() for r in expected[3]
            ]
            assert breaker.state == BREAKER_CLOSED
            assert breaker.probes == 1

    def test_serial_time_budget_raises_partial_batch(
        self, chaos_graph, chaos_patterns
    ):
        with MatchSession(chaos_graph) as session:
            with pytest.raises(PartialBatchError) as excinfo:
                session.match_many(
                    chaos_patterns, parallel=False, time_budget=1e-9
                )
            error = excinfo.value
            assert len(error.results) == len(chaos_patterns)
            assert error.completed == sum(
                1 for r in error.results if r is not None
            )
            assert error.completed < len(chaos_patterns)

    def test_pooled_time_budget_raises_partial_batch(
        self, chaos_graph, chaos_patterns
    ):
        # Every worker hangs on every task (rate 1, no cap): without the
        # budget this batch would grind through deadline-kill cycles; with
        # it, match_many reports a partial batch within the budget window.
        with MatchSession(chaos_graph) as session:
            session.worker_pool(max_workers=2, task_timeout=30.0)
            faults.arm(FaultPlan.parse("worker.hang~60", seed=5))
            try:
                with pytest.raises(PartialBatchError) as excinfo:
                    session.match_many(
                        chaos_patterns, parallel=True, time_budget=0.5
                    )
            finally:
                faults.disarm()
            error = excinfo.value
            assert error.completed < len(chaos_patterns)
            assert session.stats()["reliability"]["budget_exceeded"] == 1

    def test_stats_reliability_shape(self, chaos_graph, chaos_patterns):
        with MatchSession(chaos_graph) as session:
            session.match_many(chaos_patterns, parallel=True, max_workers=2)
            reliability = session.stats()["reliability"]
            for key in (
                "faults_armed",
                "injections",
                "breaker",
                "degraded_batches",
                "budget_exceeded",
                "cache_pressure_sheds",
                "retries",
                "deadline_kills",
                "quarantined",
                "respawns",
                "worker_crashes",
                "corrupt_results",
                "lost_tasks",
                "exhausted_tasks",
                "worker_fault_notes",
            ):
                assert key in reliability, key
            assert reliability["faults_armed"] is None
            assert reliability["breaker"]["state"] == BREAKER_CLOSED
