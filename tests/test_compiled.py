"""Unit tests for the compiled graph core (:mod:`repro.graph.compiled`).

Covers id interning and CSR construction round-trips (including graphs
mutated after a compile), the inverted attribute index, bitset
encode/decode, bounded bitset reachability against the reference
:class:`DataGraph` traversals, and the version-keyed compile cache.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.compiled import CompiledGraph, compile_graph, iter_bits
from repro.graph.datagraph import DataGraph
from repro.graph.predicates import Predicate


def random_graph(seed: int, num_nodes: int = 30, num_edges: int = 90) -> DataGraph:
    rng = random.Random(seed)
    graph = DataGraph(name=f"random-{seed}")
    # Mixed id types: ints, strings, tuples — all hashable.
    ids = (
        [i for i in range(num_nodes // 3)]
        + [f"n{i}" for i in range(num_nodes // 3)]
        + [("t", i) for i in range(num_nodes - 2 * (num_nodes // 3))]
    )
    labels = ["A", "B", "C"]
    for node in ids:
        graph.add_node(node, label=rng.choice(labels), rank=rng.randint(0, 5))
    for _ in range(num_edges):
        source, target = rng.sample(ids, 2)
        graph.add_edge(source, target, strict=False)
    return graph


class TestInterning:
    def test_id_round_trip(self):
        graph = random_graph(1)
        compiled = compile_graph(graph)
        assert len(compiled) == graph.number_of_nodes()
        for node in graph.nodes():
            assert node in compiled
            assert compiled.node_of(compiled.id_of(node)) == node
        # Indices are dense 0..n-1 and bijective.
        indices = {compiled.id_of(node) for node in graph.nodes()}
        assert indices == set(range(len(compiled)))

    def test_unknown_node_raises(self):
        compiled = compile_graph(random_graph(2))
        with pytest.raises(NodeNotFoundError):
            compiled.id_of("no-such-node")

    def test_interning_preserves_insertion_order(self):
        graph = random_graph(3)
        compiled = compile_graph(graph)
        assert compiled.node_ids() == graph.node_list()


class TestCSR:
    def test_adjacency_matches_datagraph(self):
        graph = random_graph(4)
        compiled = compile_graph(graph)
        for node in graph.nodes():
            index = compiled.id_of(node)
            succ = {compiled.node_of(j) for j in compiled.successors_indices(index)}
            pred = {compiled.node_of(j) for j in compiled.predecessors_indices(index)}
            assert succ == graph.successors(node)
            assert pred == graph.predecessors(node)
            assert compiled.out_degree(index) == graph.out_degree(node)
            assert compiled.in_degree(index) == graph.in_degree(node)

    def test_adjacency_bits_match_indices(self):
        graph = random_graph(5)
        compiled = compile_graph(graph)
        for index in range(len(compiled)):
            assert set(iter_bits(compiled.successors_bits(index))) == set(
                compiled.successors_indices(index)
            )
            assert set(iter_bits(compiled.predecessors_bits(index))) == set(
                compiled.predecessors_indices(index)
            )

    def test_out_nonzero_bits(self):
        graph = random_graph(6)
        compiled = compile_graph(graph)
        expected = {
            compiled.id_of(node) for node in graph.nodes() if graph.out_degree(node) > 0
        }
        assert set(iter_bits(compiled.out_nonzero_bits)) == expected

    def test_csr_after_node_and_edge_mutations(self):
        """Nodes/edges added and removed after a compile appear in the recompile."""
        graph = random_graph(7)
        stale = compile_graph(graph)
        removed = graph.node_list()[0]
        graph.remove_node(removed)
        graph.add_node("fresh", label="Z")
        survivor = graph.node_list()[0]
        graph.add_edge("fresh", survivor)
        compiled = compile_graph(graph)
        assert compiled is not stale
        assert removed not in compiled
        assert "fresh" in compiled
        index = compiled.id_of("fresh")
        assert {compiled.node_of(j) for j in compiled.successors_indices(index)} == {
            survivor
        }
        # The stale snapshot is untouched (it still knows the removed node).
        assert removed in stale
        for node in graph.nodes():
            node_index = compiled.id_of(node)
            assert {
                compiled.node_of(j) for j in compiled.successors_indices(node_index)
            } == graph.successors(node)


class TestBitsets:
    def test_encode_decode_round_trip(self):
        graph = random_graph(8)
        compiled = compile_graph(graph)
        nodes = set(graph.node_list()[::3])
        assert compiled.decode(compiled.encode(nodes)) == nodes

    def test_encode_ignores_unknown_ids(self):
        graph = random_graph(9)
        compiled = compile_graph(graph)
        some = graph.node_list()[0]
        assert compiled.decode(compiled.encode([some, "unknown"])) == {some}

    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]


class TestAttributeIndex:
    def test_candidate_bits_equals_predicate_scan(self):
        graph = random_graph(10)
        compiled = compile_graph(graph)
        predicates = [
            Predicate.label("A"),
            Predicate.label("B"),
            Predicate.parse("rank >= 3"),
            Predicate.label("C") & Predicate.parse("rank < 2"),
            Predicate.equals("label", "missing-label"),
            Predicate(),  # wildcard
        ]
        for predicate in predicates:
            expected = {
                v for v in graph.nodes() if predicate.evaluate(graph.attributes(v))
            }
            assert compiled.decode(compiled.candidate_bits(predicate)) == expected

    def test_snapshot_attributes_frozen_against_live_mutation(self):
        """Post-compile attribute mutations must not leak into the snapshot.

        The equality index is frozen at compile time; if residual atoms read
        the live dicts, a mixed predicate would answer consistently with
        neither version.
        """
        graph = DataGraph()
        graph.add_node(0, label="A", age=10)
        compiled = compile_graph(graph)
        graph.set_attributes(0, label="B", age=1)
        predicate = Predicate.parse("label = 'A' & age > 5")
        assert compiled.decode(compiled.candidate_bits(predicate)) == {0}
        assert compiled.attributes(0) == {"label": "A", "age": 10}

    def test_unhashable_attribute_values_fall_back_to_scan(self):
        graph = DataGraph()
        graph.add_node("a", tags=["x"], label="A")
        graph.add_node("b", tags=["y"], label="A")
        compiled = compile_graph(graph)
        predicate = Predicate.equals("tags", ["x"])
        assert compiled.decode(compiled.candidate_bits(predicate)) == {"a"}


class TestBoundedReachability:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_descendants_within_bits_matches_datagraph(self, seed):
        graph = random_graph(seed)
        compiled = compile_graph(graph)
        for node in graph.nodes():
            index = compiled.id_of(node)
            for bound in (1, 2, 3, None):
                assert compiled.decode(
                    compiled.descendants_within_bits(index, bound)
                ) == graph.descendants_within(node, bound)
                assert compiled.decode(
                    compiled.ancestors_within_bits(index, bound)
                ) == graph.ancestors_within(node, bound)

    def test_self_loop_counts_as_cycle_of_length_one(self):
        graph = DataGraph()
        graph.add_node("a")
        graph.add_edge("a", "a")
        compiled = compile_graph(graph)
        assert compiled.decode(compiled.descendants_within_bits(0, 1)) == {"a"}
        assert compiled.decode(compiled.ancestors_within_bits(0, 1)) == {"a"}


class TestMismatchedOracleGraph:
    def test_oracle_over_other_graph_matches_legacy_semantics(self):
        """An oracle built over a different graph must not serve wrong bitsets.

        The memoising oracle overrides key their caches by interned index and
        their own graph's version; when handed a snapshot of a *different*
        graph they must fall back to the set-based conversion, reproducing
        the legacy path's behaviour exactly.
        """
        from repro.distance.bfs import BFSDistanceOracle
        from repro.distance.matrix import DistanceMatrix
        from repro.graph.pattern import Pattern
        from repro.matching.bounded import match

        graph = random_graph(20)
        other = graph.copy()
        source, target = other.node_list()[:2]
        other.add_edge(source, target, strict=False) or other.remove_edge(
            source, target
        )

        pattern = Pattern()
        pattern.add_node("u", "A")
        pattern.add_node("v", "B")
        pattern.add_edge("u", "v", 2)

        for oracle in (DistanceMatrix(other), BFSDistanceOracle(other)):
            compiled_result = match(pattern, graph, oracle, use_compiled=True)
            legacy_result = match(pattern, graph, oracle, use_compiled=False)
            assert compiled_result == legacy_result

    def test_snapshot_exposes_weak_graph_reference(self):
        graph = random_graph(21)
        compiled = compile_graph(graph)
        assert compiled.graph is graph

    def test_stale_snapshot_does_not_poison_oracle_memos(self):
        """A stale snapshot of the *same* graph must not be memoised.

        Otherwise its answer would be served to later queries made with a
        fresh snapshot — the exact call path ``match()`` uses.
        """
        from repro.distance.bfs import BFSDistanceOracle
        from repro.distance.matrix import DistanceMatrix
        from repro.distance.twohop import TwoHopOracle

        graph = DataGraph()
        for node in (0, 1, 2):
            graph.add_node(node, label="A")
        graph.add_edge(0, 1)
        stale = compile_graph(graph)
        graph.add_edge(1, 2)

        for oracle in (
            DistanceMatrix(graph),
            BFSDistanceOracle(graph),
            TwoHopOracle(graph),
        ):
            # Query with the stale snapshot first (its answer reflects the
            # stale adjacency), then with a fresh one.
            oracle.descendants_within_bits(stale, 0, None)
            fresh = compile_graph(graph)
            bits = oracle.descendants_within_bits(fresh, 0, None)
            assert fresh.decode(bits) == {1, 2}, type(oracle).__name__


class TestCompileCache:
    def test_same_version_reuses_snapshot(self):
        graph = random_graph(14)
        assert compile_graph(graph) is compile_graph(graph)

    def test_mutation_invalidates_snapshot(self):
        graph = random_graph(15)
        before = compile_graph(graph)
        source, target = graph.node_list()[:2]
        graph.add_edge(source, target, strict=False) or graph.remove_edge(
            source, target
        )
        after = compile_graph(graph)
        assert after is not before
        assert after.version == graph.version

    def test_direct_construction_requires_classmethod(self):
        with pytest.raises(TypeError):
            CompiledGraph()
