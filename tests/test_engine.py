"""Tests for the unified query engine (repro.engine)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distance.bfs import BFSDistanceOracle
from repro.distance.incremental import EdgeUpdate
from repro.engine import (
    STRATEGY_BOUNDED,
    STRATEGY_INCREMENTAL,
    STRATEGY_SIMULATION,
    MatchSession,
    ResultCache,
    fork_available,
    plan_query,
)
from repro.exceptions import EngineError, NodeNotFoundError
from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph
from repro.graph.pattern import Pattern
from repro.matching.bounded import match, naive_match
from repro.matching.match_result import MatchResult
from repro.matching.simulation import graph_simulation
from repro.workloads.patterns import engine_batch_workload

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

LABELS = ["A", "B", "C"]


def bounded_pattern(bound=2) -> Pattern:
    pattern = Pattern(name="ab")
    pattern.add_node("A", "A")
    pattern.add_node("B", "B")
    pattern.add_edge("A", "B", bound)
    return pattern


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------


class TestPlanner:
    def test_bound_one_plans_simulation(self):
        plan = plan_query(bounded_pattern(1), snapshot_version=0)
        assert plan.strategy == STRATEGY_SIMULATION

    def test_bound_k_plans_bounded(self):
        plan = plan_query(bounded_pattern(3), snapshot_version=0)
        assert plan.strategy == STRATEGY_BOUNDED
        assert plan.max_bound == 3

    def test_unbounded_edge_plans_bounded(self):
        plan = plan_query(bounded_pattern("*"), snapshot_version=0)
        assert plan.strategy == STRATEGY_BOUNDED
        assert plan.has_unbounded

    def test_edgeless_pattern_plans_simulation(self):
        pattern = Pattern()
        pattern.add_node("A", "A")
        plan = plan_query(pattern, snapshot_version=0)
        assert plan.strategy == STRATEGY_SIMULATION

    def test_updates_plan_incremental(self):
        plan = plan_query(
            bounded_pattern(1),
            snapshot_version=0,
            updates=[EdgeUpdate("insert", "x", "y")],
        )
        assert plan.strategy == STRATEGY_INCREMENTAL

    def test_custom_oracle_disables_adjacency_fast_path(self):
        plan = plan_query(bounded_pattern(1), snapshot_version=0, custom_oracle=True)
        assert plan.strategy == STRATEGY_BOUNDED

    def test_cache_key_carries_version_and_strategy(self):
        pattern = bounded_pattern(2)
        plan_a = plan_query(pattern, snapshot_version=4)
        plan_b = plan_query(pattern, snapshot_version=5)
        assert plan_a.fingerprint == plan_b.fingerprint
        assert plan_a.cache_key != plan_b.cache_key

    def test_explain_mentions_strategy_and_reason(self):
        plan = plan_query(bounded_pattern(1), snapshot_version=0)
        text = plan.explain()
        assert "simulation" in text
        assert "bound 1" in text


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(4)
        key = ("fp", 0, "bounded")
        assert cache.get(key) is None
        cache.put(key, MatchResult.empty())
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_past_cap(self):
        cache = ResultCache(2)
        for index in range(3):
            cache.put((f"fp{index}", 0, "bounded"), MatchResult.empty())
        assert len(cache) == 2
        assert ("fp0", 0, "bounded") not in cache
        assert cache.evictions == 1

    def test_evict_stale_keeps_current_version(self):
        cache = ResultCache(8)
        cache.put(("fp", 0, "bounded"), MatchResult.empty())
        cache.put(("fp", 1, "bounded"), MatchResult.empty())
        assert cache.evict_stale(1) == 1
        assert ("fp", 1, "bounded") in cache

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(EngineError):
            ResultCache(0)


# ----------------------------------------------------------------------
# session basics
# ----------------------------------------------------------------------


class TestMatchSession:
    def test_match_agrees_with_free_function(self, random_graph):
        patterns = engine_batch_workload(random_graph, num_patterns=6, seed=5)
        session = MatchSession(random_graph)
        for pattern in patterns:
            assert session.match(pattern) == match(pattern, random_graph)

    def test_match_agrees_with_naive_reference(self, tiny_graph, tiny_pattern):
        session = MatchSession(tiny_graph)
        assert session.match(tiny_pattern) == naive_match(tiny_pattern, tiny_graph)

    def test_simulation_strategy_agrees_with_bounded(self, random_graph):
        # Bound-1 patterns take the adjacency fast path; the relation must
        # be identical to the oracle-driven bounded refinement.
        pattern = bounded_pattern(1)
        pattern.set_predicate("A", {"label": "L1"})
        pattern.set_predicate("B", {"label": "L2"})
        session = MatchSession(random_graph)
        assert session.plan(pattern).strategy == STRATEGY_SIMULATION
        oracle_session = MatchSession(
            random_graph, oracle=BFSDistanceOracle(random_graph)
        )
        assert oracle_session.plan(pattern).strategy == STRATEGY_BOUNDED
        assert session.match(pattern) == oracle_session.match(pattern)

    def test_simulate_matches_graph_simulation(self, random_graph):
        pattern = bounded_pattern(3)
        pattern.set_predicate("A", {"label": "L1"})
        pattern.set_predicate("B", {"label": "L2"})
        session = MatchSession(random_graph)
        assert session.simulate(pattern) == graph_simulation(pattern, random_graph)

    def test_empty_results_carry_pattern_nodes(self, tiny_graph):
        pattern = Pattern()
        pattern.add_node("A", "A")
        pattern.add_node("Z", "Z")  # no Z-labelled data node
        pattern.add_edge("A", "Z", 1)
        result = MatchSession(tiny_graph).match(pattern)
        assert result.is_empty
        assert result.pattern_nodes() == {"A", "Z"}

    def test_repeated_identical_queries_hit_the_cache(self, random_graph):
        session = MatchSession(random_graph)
        pattern = engine_batch_workload(random_graph, num_patterns=1, seed=9)[0]
        first = session.match(pattern)
        second = session.match(pattern)
        assert first is second  # served from the result cache, not recomputed
        stats = session.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        # A structurally identical copy (same fingerprint) also hits.
        assert session.match(pattern.copy(name="other")) is first
        assert session.stats()["cache_hits"] == 2

    def test_stats_report_plan_strategies(self, random_graph):
        session = MatchSession(random_graph)
        session.match(bounded_pattern(1))
        session.match(bounded_pattern(2))
        plans = session.stats()["plans"]
        assert plans.get(STRATEGY_SIMULATION, 0) >= 1
        assert plans.get(STRATEGY_BOUNDED, 0) >= 1

    def test_context_manager_clears_caches(self, random_graph):
        with MatchSession(random_graph) as session:
            session.match(bounded_pattern(2))
            assert session.stats()["cache_entries"] == 1
        assert session.stats()["cache_entries"] == 0

    def test_store_is_lazy_cached_and_version_guarded(self, tiny_graph):
        session = MatchSession(tiny_graph)
        store = session.store()
        assert session.store() is store  # cached while the snapshot stands
        compiled = session.snapshot
        a, d = compiled.id_of("a"), compiled.id_of("d")
        assert store.rows[a][d] == 2  # a -> b -> d
        session.patch_edge_delete("b", "d")
        rebuilt = session.store()  # snapshot moved -> fresh store
        assert rebuilt is not store
        assert rebuilt.rows[a][d] == 2  # a -> c -> d still holds
        session.patch_edge_delete("c", "d")
        assert d not in session.store().rows[a]

    def test_patch_insert_requires_known_nodes(self, tiny_graph):
        session = MatchSession(tiny_graph)
        with pytest.raises(NodeNotFoundError):
            session.patch_edge_insert("a", "missing")


# ----------------------------------------------------------------------
# invalidation
# ----------------------------------------------------------------------


class TestInvalidation:
    def test_patch_insert_evicts_and_reserves_fresh_result(self, chain_graph):
        pattern = Pattern()
        pattern.add_node("0", {"label": "L0"})
        pattern.add_node("4", {"label": "L4"})
        pattern.add_edge("0", "4", 1)
        session = MatchSession(chain_graph)
        assert session.match(pattern).is_empty
        assert session.patch_edge_insert("n0", "n4")
        assert session.stats()["cache_entries"] == 0
        result = session.match(pattern)
        assert sorted(result.pairs()) == [("0", "n0"), ("4", "n4")]
        assert result == match(pattern, chain_graph)

    def test_standing_matchers_are_lru_capped(self, tiny_graph):
        from repro.engine.session import DEFAULT_MAX_MATCHERS

        session = MatchSession(tiny_graph)
        for index in range(DEFAULT_MAX_MATCHERS + 3):
            pattern = Pattern(name=f"m{index}")
            pattern.add_node("A", {"label": "A", "rank": index})
            session.incremental_matcher(pattern)
        assert session.stats()["incremental_matchers"] == DEFAULT_MAX_MATCHERS

    def test_patch_delete_is_noop_for_missing_edge(self, chain_graph):
        session = MatchSession(chain_graph)
        session.match(bounded_pattern(2))
        before = session.stats()["cache_entries"]
        assert not session.patch_edge_delete("n0", "n4")
        assert session.stats()["cache_entries"] == before

    def test_out_of_band_mutation_is_detected(self, chain_graph):
        pattern = Pattern()
        pattern.add_node("0", {"label": "L0"})
        pattern.add_node("4", {"label": "L4"})
        pattern.add_edge("0", "4", 1)
        session = MatchSession(chain_graph)
        assert session.match(pattern).is_empty
        chain_graph.add_edge("n0", "n4")  # behind the session's back
        assert not session.match(pattern).is_empty

    def test_update_stream_routes_through_incmatch_and_reseeds_cache(self):
        graph = DataGraph()
        for node, label in [("a", "A"), ("a2", "A"), ("b", "B")]:
            graph.add_node(node, label=label)
        graph.add_edge("a", "b")
        pattern = bounded_pattern(2)
        session = MatchSession(graph)
        baseline = session.match(pattern)
        assert sorted(baseline.pairs()) == [("A", "a"), ("B", "b")]
        result = session.match(pattern, updates=[EdgeUpdate("insert", "a2", "b")])
        assert sorted(result.pairs()) == [("A", "a"), ("A", "a2"), ("B", "b")]
        assert session.stats()["incremental_matchers"] == 1
        # The maintained result was seeded into the cache for plain match().
        hits_before = session.stats()["cache_hits"]
        assert session.match(pattern) is result
        assert session.stats()["cache_hits"] == hits_before + 1
        assert result == match(pattern, graph)


# ----------------------------------------------------------------------
# batch execution
# ----------------------------------------------------------------------


class TestMatchMany:
    def test_serial_batch_matches_per_call_loop(self, random_graph):
        patterns = engine_batch_workload(random_graph, num_patterns=8, seed=3)
        session = MatchSession(random_graph)
        results = session.match_many(patterns, parallel=False)
        assert results == [match(pattern, random_graph) for pattern in patterns]

    def test_duplicate_patterns_computed_once(self, random_graph):
        pattern = engine_batch_workload(random_graph, num_patterns=1, seed=4)[0]
        session = MatchSession(random_graph)
        results = session.match_many([pattern, pattern.copy()], parallel=False)
        assert results[0] is results[1]
        assert session.stats()["cache_entries"] == 1

    def test_warm_batch_is_all_cache_hits(self, random_graph):
        patterns = engine_batch_workload(random_graph, num_patterns=5, seed=6)
        session = MatchSession(random_graph)
        cold = session.match_many(patterns)
        hits_before = session.stats()["cache_hits"]
        warm = session.match_many(patterns)
        assert warm == cold
        assert session.stats()["cache_hits"] == hits_before + len(patterns)

    @pytest.mark.skipif(not fork_available(), reason="requires the fork start method")
    def test_pooled_batch_matches_serial(self, random_graph):
        patterns = engine_batch_workload(random_graph, num_patterns=6, seed=8)
        serial = MatchSession(random_graph).match_many(patterns, parallel=False)
        with MatchSession(random_graph) as session:
            pooled = session.match_many(patterns, parallel=True, max_workers=2)
            assert pooled == serial
            stats = session.stats()
            assert stats["parallel_batches"] == 1
            assert stats["forked_queries"] == len(patterns)
            assert stats["pool"]["serial_fallbacks"] == 0
            # The pooled results were cached in the parent ...
            assert session.match_many(patterns) == serial
            assert session.stats()["cache_hits"] >= len(patterns)
            # ... and the pool persists across batches: a second parallel
            # batch reuses the same workers instead of respawning.
            spawned = stats["pool"]["workers_spawned"]
            more = engine_batch_workload(random_graph, num_patterns=4, seed=9)
            assert session.match_many(more, parallel=True, max_workers=2) == [
                match(pattern, random_graph) for pattern in more
            ]
            assert session.stats()["pool"]["workers_spawned"] == spawned
        # Context-manager exit shut the pool down.
        assert session._pool is None

    def test_auto_heuristic_never_pools_tiny_batches(self, random_graph):
        # A handful of queries on a small graph must never pay the pool
        # spawn cost under the default ``parallel=None`` heuristic.
        session = MatchSession(random_graph)
        patterns = engine_batch_workload(random_graph, num_patterns=3, seed=11)
        results = session.match_many(patterns)
        assert results == [match(pattern, random_graph) for pattern in patterns]
        assert session._pool is None
        assert session.stats()["parallel_batches"] == 0
        assert session.stats()["pool"] is None

    @pytest.mark.skipif(not fork_available(), reason="requires the fork start method")
    def test_auto_heuristic_reuses_live_pool_for_small_batches(self, random_graph):
        with MatchSession(random_graph) as session:
            warmup = engine_batch_workload(random_graph, num_patterns=4, seed=8)
            session.match_many(warmup, parallel=True, max_workers=2)
            assert session._pool is not None and session._pool.started
            batches_before = session.stats()["parallel_batches"]
            # Once the pool is live, even a tiny batch rides it (dispatch is
            # just IPC; no spawn cost left to amortise).
            tiny = engine_batch_workload(random_graph, num_patterns=2, seed=13)
            assert session.match_many(tiny) == [
                match(pattern, random_graph) for pattern in tiny
            ]
            assert session.stats()["parallel_batches"] == batches_before + 1


# ----------------------------------------------------------------------
# property: no patch sequence may ever serve a stale cached result
# ----------------------------------------------------------------------


@st.composite
def graphs(draw, max_nodes=8):
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = DataGraph()
    for index in range(num_nodes):
        graph.add_node(index, label=draw(st.sampled_from(LABELS)))
    possible = [(i, j) for i in range(num_nodes) for j in range(num_nodes) if i != j]
    for source, target in draw(
        st.lists(st.sampled_from(possible), max_size=2 * num_nodes, unique=True)
    ):
        graph.add_edge(source, target)
    return graph


@st.composite
def patterns(draw, max_nodes=4):
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    pattern = Pattern()
    for index in range(num_nodes):
        pattern.add_node(index, draw(st.sampled_from(LABELS)))
    for index in range(1, num_nodes):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        pattern.add_edge(parent, index, draw(st.sampled_from([1, 2, "*"])))
    return pattern


@given(
    graph=graphs(),
    pattern=patterns(),
    flips=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
        min_size=1,
        max_size=12,
    ),
    data=st.data(),
)
@SETTINGS
def test_property_patch_sequences_never_serve_stale_results(
    graph, pattern, flips, data
):
    """Any patch_edge_insert/delete sequence: the session answer always equals
    a fresh ``match()`` on an identical graph (the stale-cache detector)."""
    session = MatchSession(graph)
    session.match(pattern)  # populate the cache
    for source, target in flips:
        if source == target or source not in graph or target not in graph:
            continue
        if graph.has_edge(source, target):
            session.patch_edge_delete(source, target)
        else:
            session.patch_edge_insert(source, target)
        if data.draw(st.booleans(), label="query now"):
            expected = match(pattern, graph.copy())
            assert session.match(pattern) == expected
    assert session.match(pattern) == match(pattern, graph.copy())
