"""Unit tests for the pattern generator (repro.graph.pattern_generator)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, PatternError
from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph
from repro.graph.pattern_generator import PatternGenerator, generate_pattern, generate_patterns
from repro.matching.bounded import match


@pytest.fixture
def base_graph() -> DataGraph:
    return random_data_graph(60, 180, num_labels=6, seed=5)


class TestPatternGenerator:
    def test_requested_shape(self, base_graph):
        generator = PatternGenerator(base_graph, seed=1)
        pattern = generator.generate(5, 7, 3)
        assert pattern.number_of_nodes() == 5
        assert pattern.number_of_edges() == 7
        finite_bounds = [
            pattern.bound(u, v)
            for u, v in pattern.edges()
            if pattern.bound(u, v) is not None
        ]
        assert all(1 <= bound <= 3 for bound in finite_bounds)

    def test_deterministic_with_seed(self, base_graph):
        p1 = PatternGenerator(base_graph, seed=3).generate(4, 5, 3)
        p2 = PatternGenerator(base_graph, seed=3).generate(4, 5, 3)
        assert p1.to_dict() == p2.to_dict()

    def test_spanning_tree_pattern_is_positive(self, base_graph):
        """Tree patterns with only bounded edges must be matched by the graph."""
        generator = PatternGenerator(base_graph, seed=7, unbounded_probability=0.0)
        for _ in range(5):
            pattern = generator.generate(4, 3, 4)
            assert match(pattern, base_graph), "tree pattern should be positive"

    def test_bound_slack_respected(self, base_graph):
        generator = PatternGenerator(base_graph, seed=11, bound_slack=0)
        pattern = generator.generate(4, 3, 5)
        for u, v in pattern.edges():
            assert pattern.bound(u, v) == 5

    def test_unbounded_probability_one_gives_star_edges(self, base_graph):
        generator = PatternGenerator(base_graph, seed=13, unbounded_probability=1.0)
        pattern = generator.generate(4, 4, 3)
        assert all(pattern.bound(u, v) is None for u, v in pattern.edges())

    def test_generate_many(self, base_graph):
        patterns = PatternGenerator(base_graph, seed=17).generate_many(4, 3, 3, 2)
        assert len(patterns) == 4
        assert len({p.name for p in patterns}) == 4

    def test_generate_dag(self, base_graph):
        generator = PatternGenerator(base_graph, seed=19)
        for _ in range(5):
            pattern = generator.generate_dag(5, 7, 3)
            assert pattern.is_dag()
            assert pattern.number_of_nodes() == 5

    def test_predicate_attributes_selection(self, base_graph):
        generator = PatternGenerator(
            base_graph, seed=23, predicate_attributes=("label",)
        )
        pattern = generator.generate(3, 2, 2)
        for node in pattern.nodes():
            referenced = pattern.predicate(node).attributes_referenced()
            assert referenced in ((), ("label",))

    def test_too_few_edges_rejected(self, base_graph):
        with pytest.raises(PatternError):
            PatternGenerator(base_graph, seed=1).generate(5, 2, 3)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            PatternGenerator(DataGraph())

    def test_invalid_probability_rejected(self, base_graph):
        with pytest.raises(PatternError):
            PatternGenerator(base_graph, unbounded_probability=2.0)

    def test_single_node_pattern(self, base_graph):
        pattern = PatternGenerator(base_graph, seed=29).generate(1, 0, 3)
        assert pattern.number_of_nodes() == 1
        assert pattern.number_of_edges() == 0
        assert match(pattern, base_graph)


class TestModuleHelpers:
    def test_generate_pattern_wrapper(self, base_graph):
        pattern = generate_pattern(base_graph, 3, 3, 2, seed=31)
        assert pattern.number_of_nodes() == 3

    def test_generate_patterns_wrapper(self, base_graph):
        patterns = generate_patterns(base_graph, 3, 3, 3, 2, seed=37)
        assert len(patterns) == 3
