"""Property-based tests (hypothesis) for the distance substrates."""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distance.bfs import BFSDistanceOracle
from repro.distance.incremental import (
    EdgeUpdate,
    update_matrix_batch,
    update_matrix_delete,
    update_matrix_insert,
)
from repro.distance.matrix import DistanceMatrix
from repro.distance.oracle import INF
from repro.distance.twohop import TwoHopOracle
from repro.graph.datagraph import DataGraph

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def digraphs(draw, max_nodes: int = 10) -> DataGraph:
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    graph = DataGraph()
    for index in range(num_nodes):
        graph.add_node(index, label="N")
    possible = [(u, v) for u in range(num_nodes) for v in range(num_nodes) if u != v]
    if possible:
        for source, target in draw(
            st.lists(st.sampled_from(possible), max_size=3 * num_nodes, unique=True)
        ):
            graph.add_edge(source, target, strict=False)
    return graph


@st.composite
def graph_with_updates(draw) -> Tuple[DataGraph, List[EdgeUpdate]]:
    graph = draw(digraphs())
    nodes = graph.node_list()
    updates: List[EdgeUpdate] = []
    num_updates = draw(st.integers(min_value=1, max_value=8))
    for _ in range(num_updates):
        source = draw(st.sampled_from(nodes))
        target = draw(st.sampled_from(nodes))
        if source == target:
            continue
        kind = draw(st.sampled_from(["insert", "delete"]))
        updates.append(EdgeUpdate(kind, source, target))
    return graph, updates


class TestOracleConsistency:
    @SETTINGS
    @given(digraphs())
    def test_matrix_triangle_inequality_over_edges(self, graph):
        matrix = DistanceMatrix(graph)
        for source, target in graph.edges():
            for other in graph.nodes():
                if matrix.distance(target, other) != INF:
                    assert matrix.distance(source, other) <= 1 + matrix.distance(target, other)

    @SETTINGS
    @given(digraphs())
    def test_all_oracles_agree_on_distances(self, graph):
        matrix = DistanceMatrix(graph)
        bfs = BFSDistanceOracle(graph)
        twohop = TwoHopOracle(graph)
        for source in graph.nodes():
            for target in graph.nodes():
                expected = matrix.distance(source, target)
                assert bfs.distance(source, target) == expected
                assert twohop.distance(source, target) == expected

    @SETTINGS
    @given(digraphs(), st.integers(min_value=1, max_value=4))
    def test_descendants_within_consistent_with_within(self, graph, bound):
        matrix = DistanceMatrix(graph)
        for source in graph.nodes():
            reachable = matrix.descendants_within(source, bound)
            for target in graph.nodes():
                assert (target in reachable) == matrix.within(source, target, bound)

    @SETTINGS
    @given(digraphs(), st.integers(min_value=1, max_value=4))
    def test_ancestors_is_transpose_of_descendants(self, graph, bound):
        matrix = DistanceMatrix(graph)
        for source in graph.nodes():
            for target in matrix.descendants_within(source, bound):
                assert source in matrix.ancestors_within(target, bound)


class TestIncrementalMaintenance:
    @SETTINGS
    @given(graph_with_updates())
    def test_incremental_updates_match_full_recompute(self, graph_and_updates):
        graph, updates = graph_and_updates
        matrix = DistanceMatrix(graph)
        for update in updates:
            if update.is_insert and not graph.has_edge(update.source, update.target):
                update_matrix_insert(matrix, update.source, update.target)
            elif update.is_delete and graph.has_edge(update.source, update.target):
                update_matrix_delete(matrix, update.source, update.target)
            assert matrix.equals(DistanceMatrix(graph))

    @SETTINGS
    @given(graph_with_updates())
    def test_batch_updates_match_full_recompute_and_report_real_changes(
        self, graph_and_updates
    ):
        graph, updates = graph_and_updates
        before = DistanceMatrix(graph).copy()
        matrix = DistanceMatrix(graph)
        affected = update_matrix_batch(matrix, updates)
        recomputed = DistanceMatrix(graph)
        assert matrix.equals(recomputed)
        for (source, target), (old, new) in affected.items():
            assert old != new
            assert old == before.row(source).get(target, INF)
            assert new == recomputed.distance(source, target)

    @SETTINGS
    @given(digraphs())
    def test_insert_then_delete_is_identity(self, graph):
        nodes = graph.node_list()
        if len(nodes) < 2:
            return
        source, target = nodes[0], nodes[-1]
        if source == target or graph.has_edge(source, target):
            return
        matrix = DistanceMatrix(graph)
        before = matrix.copy()
        update_matrix_insert(matrix, source, target)
        update_matrix_delete(matrix, source, target)
        assert matrix.equals(before)
