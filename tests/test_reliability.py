"""Unit tests for the reliability primitives (repro.reliability).

Covers the fault-plan grammar and its seeded determinism, the retry
policy's backoff envelope, the circuit breaker's full state machine (on a
fake clock — no sleeping), and the batch budget.
"""

from __future__ import annotations

import random

import pytest

from repro.reliability import faults
from repro.reliability.faults import FaultPlan, FaultPlanError, FaultSpec
from repro.reliability.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BatchBudget,
    CircuitBreaker,
    RetryPolicy,
)


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with fault injection disarmed."""
    faults.disarm()
    yield
    faults.disarm()


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# plan grammar
# ----------------------------------------------------------------------


class TestPlanGrammar:
    def test_parse_bare_point(self):
        spec = FaultSpec.parse("worker.crash")
        assert spec.point == "worker.crash"
        assert spec.rate == 1.0
        assert spec.max_fires is None
        assert spec.arg is None

    def test_parse_full_spec(self):
        spec = FaultSpec.parse("worker.hang@0.25#3~1.5")
        assert spec.point == "worker.hang"
        assert spec.rate == 0.25
        assert spec.max_fires == 3
        assert spec.arg == 1.5

    def test_round_trip(self):
        for text in [
            "worker.crash",
            "worker.hang@0.25#3~1.5",
            "queue.stall#1",
            "snapshot.skew@0.5",
            "cache.pressure@0",
        ]:
            assert FaultSpec.parse(text).to_text() == text

    def test_plan_env_round_trip(self):
        plan = FaultPlan.parse("42:worker.crash@0.1#2,snapshot.skew")
        assert plan.seed == 42
        assert len(plan.specs) == 2
        again = FaultPlan.parse(plan.to_env())
        assert again.to_env() == plan.to_env()

    def test_plan_with_explicit_seed_takes_bare_specs(self):
        plan = FaultPlan.parse("worker.crash,queue.stall", seed=7)
        assert plan.seed == 7
        assert {spec.point for spec in plan.specs} == {
            "worker.crash",
            "queue.stall",
        }

    @pytest.mark.parametrize(
        "bad",
        [
            "worker.crash",  # missing seed prefix
            "x:worker.crash",  # non-integer seed
            "1:",  # empty plan
            "1:unknown.point",
            "1:worker.crash@2.0",  # rate out of range
            "1:worker.crash#0",  # non-positive cap
            "1:worker.crash@oops",
            "1:worker.crash,worker.crash",  # duplicate point
        ],
    )
    def test_malformed_plans_raise(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)


# ----------------------------------------------------------------------
# armed behaviour
# ----------------------------------------------------------------------


class TestArmedFaults:
    def test_disarmed_never_fires(self):
        assert faults.ENABLED is False
        assert faults.should_fire("worker.crash") is False
        assert faults.counters() == {}
        assert faults.evaluations() == 0

    def test_unlisted_point_never_fires_and_is_not_counted(self):
        faults.arm(FaultPlan.parse("1:worker.crash"))
        assert faults.should_fire("queue.stall") is False
        assert faults.evaluations() == 0

    def test_rate_one_always_fires_until_cap(self):
        faults.arm(FaultPlan.parse("1:worker.crash#2"))
        assert faults.should_fire("worker.crash") is True
        assert faults.should_fire("worker.crash") is True
        assert faults.should_fire("worker.crash") is False
        assert faults.counters() == {"worker.crash": 2}
        assert faults.evaluations() == 3

    def test_rate_zero_probe_counts_evaluations_only(self):
        faults.arm(FaultPlan.parse("1:snapshot.skew@0"))
        for _ in range(50):
            assert faults.should_fire("snapshot.skew") is False
        assert faults.evaluations() == 50
        assert faults.counters() == {"snapshot.skew": 0}

    def test_seeded_schedule_is_deterministic(self):
        def schedule(seed, salt=0):
            faults.arm(FaultPlan.parse("worker.crash@0.3", seed=seed), salt=salt)
            fired = [faults.should_fire("worker.crash") for _ in range(64)]
            faults.disarm()
            return fired

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)
        # The salt (worker id) deterministically diverges sibling streams.
        assert schedule(11, salt=1) == schedule(11, salt=1)
        assert schedule(11, salt=1) != schedule(11, salt=2)

    def test_arg_lookup_with_default(self):
        faults.arm(FaultPlan.parse("1:worker.hang~0.4"))
        assert faults.arg("worker.hang", 60.0) == 0.4
        assert faults.arg("queue.stall", 9.0) == 9.0

    def test_env_round_trip_arms_identically(self, monkeypatch):
        plan = FaultPlan.parse("5:worker.crash@0.5#1")
        monkeypatch.setenv("REPRO_FAULTS", plan.to_env())
        faults._arm_from_env()
        armed = faults.active_plan()
        assert armed is not None and armed.to_env() == plan.to_env()


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_exponentially_within_bounds(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=0.1, max_delay=1.0, jitter=0.5,
            rng=random.Random(3),
        )
        for attempt in range(8):
            delay = policy.backoff(attempt)
            floor = min(1.0, 0.1 * (2 ** attempt))
            assert floor <= delay <= floor * 1.5

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.05, max_delay=2.0, jitter=0.0)
        assert policy.backoff(0) == 0.05
        assert policy.backoff(1) == 0.1
        assert policy.backoff(10) == 2.0  # capped

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0, clock=clock)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else stays degraded
        assert breaker.probes == 1

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # half-open failure re-trips immediately
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_stats_shape(self):
        breaker = CircuitBreaker()
        stats = breaker.stats()
        assert stats["state"] == BREAKER_CLOSED
        for key in ("trips", "failures", "successes", "probes"):
            assert stats[key] == 0

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


# ----------------------------------------------------------------------
# batch budget
# ----------------------------------------------------------------------


class TestBatchBudget:
    def test_unlimited_never_expires(self):
        budget = BatchBudget(None)
        assert budget.remaining() is None
        assert not budget.expired()

    def test_counts_down_and_expires(self):
        clock = FakeClock()
        budget = BatchBudget(2.0, clock=clock)
        assert budget.remaining() == 2.0
        clock.advance(1.5)
        assert budget.remaining() == pytest.approx(0.5)
        assert not budget.expired()
        clock.advance(0.5)
        assert budget.expired()
        assert budget.remaining() == 0.0

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            BatchBudget(0.0)
        with pytest.raises(ValueError):
            BatchBudget(-1.0)
