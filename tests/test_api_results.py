"""GraphHandle / PreparedQuery / ResultView — the public execution surface."""

from __future__ import annotations

import json

import pytest

from repro.api import GraphHandle, Q, ResultView, wrap
from repro.engine import MatchSession
from repro.graph.builders import (
    drug_trafficking_graph,
    drug_trafficking_pattern,
)
from repro.graph.datagraph import DataGraph
from repro.graph.pattern import Pattern
from repro.matching.bounded import match
from repro.matching.result_graph import build_result_graph
from repro.matching.simulation import graph_simulation


@pytest.fixture
def handle(tiny_graph) -> GraphHandle:
    return wrap(tiny_graph)


class TestGraphHandle:
    def test_wrap_returns_handle(self, tiny_graph):
        handle = wrap(tiny_graph)
        assert isinstance(handle, GraphHandle)
        assert handle.graph is tiny_graph

    def test_query_accepts_all_spellings(self, handle, tiny_pattern):
        for query in (
            "(A:A)-[<=2]->(D:D)",
            Q.node("A", label="A").edge("A", "D", within=2, color=None).where("D", label="D"),
            tiny_pattern,
        ):
            view = handle.query(query).match()
            assert view
            assert view["A"].ids() == ["a"]
            assert view["D"].ids() == ["d"]

    def test_match_routes_through_engine(self, handle, tiny_pattern, tiny_graph):
        view = handle.query(tiny_pattern).match()
        assert view.result == match(tiny_pattern, tiny_graph)

    def test_simulate_routes_through_engine(self, tiny_graph):
        pattern = Pattern.from_dsl("(A:A)->(B:B)")
        view = wrap(tiny_graph).query(pattern).simulate()
        assert view.result == graph_simulation(pattern, tiny_graph)

    def test_explain_and_plan(self, handle):
        prepared = handle.query("(A:A)-[<=2]->(D:D)")
        assert prepared.plan().strategy == "bounded"
        assert "bounded" in prepared.explain()
        assert "bounded" in handle.explain("(A:A)-[<=2]->(D:D)")

    def test_match_shorthand(self, handle):
        assert handle.match("(A:A)-[<=2]->(D:D)")

    def test_match_many_mixed_spellings(self, handle, tiny_pattern):
        views = handle.match_many(
            ["(A:A)-[<=2]->(D:D)", Q.node("D", label="D"), tiny_pattern]
        )
        assert len(views) == 3
        assert all(isinstance(view, ResultView) for view in views)
        assert all(views)

    def test_match_many_replay_hits_cache(self, handle, tiny_pattern):
        handle.match_many([tiny_pattern])
        handle.match_many([tiny_pattern])
        stats = handle.stats()
        assert stats["cache_hits"] >= 1

    def test_mutation_through_handle(self, tiny_graph):
        handle = wrap(tiny_graph)
        assert handle.insert_edge("a", "d") is True
        assert handle.insert_edge("a", "d") is False
        assert tiny_graph.has_edge("a", "d")
        assert handle.delete_edge("a", "d") is True
        assert handle.delete_edge("a", "d") is False

    def test_session_bridge(self, tiny_graph):
        session = MatchSession(tiny_graph)
        handle = session.handle()
        assert handle.session is session
        assert GraphHandle.from_session(session).session is session

    def test_context_manager(self, tiny_graph):
        with wrap(tiny_graph) as handle:
            assert handle.match("(A:A)-[<=2]->(D:D)")

    def test_constructor_validation(self, tiny_graph):
        with pytest.raises(ValueError, match="needs a graph or a session"):
            GraphHandle()
        session = MatchSession(tiny_graph)
        with pytest.raises(ValueError, match="not both"):
            GraphHandle(session=session, result_cache_size=4)
        other = DataGraph()
        with pytest.raises(ValueError, match="different graph"):
            GraphHandle(other, session=session)

    def test_prepared_query_to_dsl(self, handle, tiny_pattern):
        text = handle.query(tiny_pattern).to_dsl()
        assert Pattern.from_dsl(text).fingerprint() == tiny_pattern.fingerprint()

    def test_repr(self, handle):
        assert "GraphHandle" in repr(handle)


class TestResultView:
    def test_truthiness_len_iter(self, handle, tiny_pattern, tiny_graph):
        view = handle.query(tiny_pattern).match()
        kernel = match(tiny_pattern, tiny_graph)
        assert bool(view) and not view.is_empty
        assert len(view) == len(kernel)
        assert set(view) == set(kernel.pairs())

    def test_empty_view(self, handle):
        view = handle.query("(Z:Z)").match()
        assert not view
        assert view.is_empty
        assert len(view) == 0
        assert view.to_mapping() == {}
        assert view["Z"].ids() == []

    def test_projection_is_lazy_and_typed(self, handle):
        view = handle.query("(A:A)-[<=2]->(D:D)").match()
        projection = view["A"]
        assert len(projection) == 1
        assert "a" in projection
        assert list(projection) == ["a"]
        assert bool(projection)
        assert "NodeProjection" in repr(projection)

    def test_projection_rows_resolve_attributes(self):
        graph = DataGraph()
        graph.add_node("v1", label="P", age=31, job="biologist")
        graph.add_node("v2", label="P", age=45, job="bio-informatician")
        view = wrap(graph).query("(p:P {age > 30})").match()
        rows = list(view["p"].rows())
        assert rows == [
            {"node": "v1", "label": "P", "age": 31, "job": "biologist"},
            {"node": "v2", "label": "P", "age": 45, "job": "bio-informatician"},
        ]
        selected = list(view["p"].rows("age", "missing"))
        assert selected == [
            {"node": "v1", "age": 31, "missing": None},
            {"node": "v2", "age": 45, "missing": None},
        ]

    def test_to_rows(self, handle):
        view = handle.query("(A:A)-[<=2]->(D:D)").match()
        assert view.to_rows() == [
            {"pattern_node": "A", "data_node": "a"},
            {"pattern_node": "D", "data_node": "d"},
        ]
        with_attrs = view.to_rows(attributes=["label"])
        assert with_attrs[0] == {
            "pattern_node": "A", "data_node": "a", "label": "A",
        }

    def test_to_json_matches_mapping(self, handle):
        view = handle.query("(A:A)-[<=2]->(D:D)").match()
        assert json.loads(view.to_json()) == {"A": ["a"], "D": ["d"]}
        assert view.to_mapping() == {"A": ["a"], "D": ["d"]}

    def test_result_graph_extraction(self):
        graph = drug_trafficking_graph()
        pattern = drug_trafficking_pattern()
        view = wrap(graph).query(pattern).match()
        extracted = view.graph()
        reference = build_result_graph(pattern, graph, match(pattern, graph))
        assert extracted.summary() == reference.summary()

    def test_result_graph_requires_graph(self, tiny_pattern, tiny_graph):
        view = ResultView(tiny_pattern, match(tiny_pattern, tiny_graph))
        with pytest.raises(ValueError, match="without a data graph"):
            view.graph()

    def test_pattern_nodes_order(self, handle, tiny_pattern):
        view = handle.query(tiny_pattern).match()
        assert view.pattern_nodes() == tiny_pattern.node_list()

    def test_repr(self, handle, tiny_pattern):
        view = handle.query(tiny_pattern).match()
        assert "ResultView" in repr(view)


class TestStreaming:
    def test_stream_maintains_match(self):
        graph = DataGraph()
        for node, label in [("x", "A"), ("m", "M"), ("y", "B")]:
            graph.add_node(node, label=label)
        monitored = wrap(graph).query("(A:A)-[<=2]->(B:B)")
        assert not monitored.match()  # x cannot reach any B yet

        view = monitored.stream([("insert", "x", "m"), ("insert", "m", "y")])
        assert view["A"].ids() == ["x"]
        assert view["B"].ids() == ["y"]
        assert view.affected is not None
        assert graph.has_edge("x", "m") and graph.has_edge("m", "y")
        # The maintained result agrees with a from-scratch recompute.
        assert view.result == match(
            Pattern.from_dsl("(A:A)-[<=2]->(B:B)"), graph
        )

    def test_stream_accepts_edge_updates(self):
        from repro.distance.incremental import EdgeUpdate

        graph = DataGraph()
        graph.add_node("x", label="A")
        graph.add_node("y", label="B")
        graph.add_edge("x", "y")
        monitored = wrap(graph).query("(A:A)->(B:B)")
        view = monitored.stream([EdgeUpdate("delete", "x", "y")])
        assert not view
        assert view.affected.removed_matches
