"""Runtime sanitizer tests (repro.analysis.sanitize).

Two layers: direct checks of each hook's contract, and armed integration
runs through the real engine paths proving the hooks fire on violations
and stay silent on healthy traffic.
"""

from __future__ import annotations

import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizeError
from repro.distance.compiled import CompiledDistanceMatrix
from repro.distance.matrix import InternedDistanceStore
from repro.distance.oracle import BoundedBitsCache
from repro.engine import MatchSession
from repro.engine.cache import ResultCache
from repro.engine.parallel import AttachedExecutor
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.generators import random_data_graph
from repro.graph.pattern_generator import PatternGenerator
from repro.matching.match_result import MatchResult


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setattr(sanitize, "ENABLED", True)


@pytest.fixture
def graph():
    return random_data_graph(30, 90, seed=14)


class TestEnvParsing:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "2"])
    def test_truthy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize._env_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " OFF "])
    def test_falsy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize._env_enabled()


class TestCacheHooks:
    def test_none_value_is_rejected(self):
        with pytest.raises(SanitizeError):
            sanitize.cache_put("BoundedBitsCache", ("k",), None)

    def test_falsy_but_real_values_pass(self):
        sanitize.cache_put("BoundedBitsCache", ("k",), 0)
        sanitize.cache_put("BoundedBitsCache", ("k",), ())

    @pytest.mark.parametrize(
        "key",
        [
            ("fingerprint", "not-an-int", "strategy"),
            ("fingerprint", 3),
            "fingerprint",
            (3, 3, "strategy"),
        ],
    )
    def test_result_cache_key_shape(self, key):
        with pytest.raises(SanitizeError):
            sanitize.result_cache_put(key, object())

    def test_result_cache_value_type(self):
        with pytest.raises(SanitizeError):
            sanitize.result_cache_put(("fp", 0, "compiled"), object())

    def test_result_cache_accepts_order_digest_keys(self):
        # The planner's 4-tuple key: (fingerprint, version, strategy, digest).
        with pytest.raises(SanitizeError):
            sanitize.result_cache_put(("fp", 0, "bounded", "sel:abc"), object())
        with pytest.raises(SanitizeError):
            sanitize.result_cache_put(("fp", 0, "bounded", 7), MatchResult.empty())
        sanitize.result_cache_put(("fp", 0, "bounded", "seed"), MatchResult.empty())
        sanitize.result_cache_put(("fp", 0, "bounded", "sel:abc"), MatchResult.empty())

    def test_bits_cache_put_enforced_when_armed(self, armed):
        cache = BoundedBitsCache(8)
        with pytest.raises(SanitizeError):
            cache.put(("a", 2, True), None)
        cache.put(("a", 2, True), 0)
        assert cache.get(("a", 2, True)) == 0

    def test_result_cache_put_enforced_when_armed(self, armed):
        cache = ResultCache()
        with pytest.raises(SanitizeError):
            cache.put(("fp", "v1", "compiled"), object())


class TestEdgeMemoHook:
    def test_consistent_entry_passes(self):
        parent, child = 0b1011, 0b0110
        survivors, counts = 0b0011, {0: 1, 1: 2}
        sanitize.edge_memo_hit((parent, child, survivors, counts))

    def test_survivors_outside_parent(self):
        with pytest.raises(SanitizeError):
            sanitize.edge_memo_hit((0b0011, 0b0110, 0b0100, {2: 1}))

    def test_count_cardinality_mismatch(self):
        with pytest.raises(SanitizeError):
            sanitize.edge_memo_hit((0b1011, 0b0110, 0b0011, {0: 1}))

    def test_count_free_final_edge_entry_passes(self):
        # Ordered-kernel final edges store counts=None (no support counts).
        sanitize.edge_memo_hit((0b1011, 0b0110, 0b0011, None))

    def test_wrong_shape(self):
        with pytest.raises(SanitizeError):
            sanitize.edge_memo_hit((0b1, 0b1, 0b1))
        with pytest.raises(SanitizeError):
            sanitize.edge_memo_hit([0b1, 0b1, 0b1, {}])


class TestPrimedBallHook:
    def test_sparse_and_dense_in_range(self):
        sanitize.primed_ball((0, 3, 7), 8)
        sanitize.primed_ball(0b1011, 8)
        sanitize.primed_ball((), 8)
        sanitize.primed_ball(0, 8)

    def test_sparse_out_of_range(self):
        with pytest.raises(SanitizeError):
            sanitize.primed_ball((0, 8), 8)
        with pytest.raises(SanitizeError):
            sanitize.primed_ball((-1,), 8)

    def test_dense_out_of_range(self):
        with pytest.raises(SanitizeError):
            sanitize.primed_ball(1 << 8, 8)

    def test_wrong_container(self):
        with pytest.raises(SanitizeError):
            sanitize.primed_ball([0, 1], 8)

    def test_prime_ball_integration(self, armed, graph):
        oracle = CompiledDistanceMatrix(graph)
        num_nodes = oracle.snapshot.num_nodes
        oracle.prime_ball(0, 2, (0, 1))
        oracle.prime_ball(1, 2, 0b11)
        with pytest.raises(SanitizeError):
            oracle.prime_ball(2, 2, (num_nodes,))
        with pytest.raises(SanitizeError):
            oracle.prime_ball(3, 2, 1 << num_nodes)


class TestPoolHandshakeHooks:
    def test_good_task_and_result(self):
        sanitize.pool_task((7, "match", 3, ("payload",)))
        sanitize.pool_result((0, 7, "ok", ("payload",)))
        sanitize.pool_result((0, 7, "stale", None))

    @pytest.mark.parametrize(
        "task",
        [
            (7, "match", 3),
            ("7", "match", 3, None),
            (7, 42, 3, None),
            (7, "match", None, None),
        ],
    )
    def test_bad_task(self, task):
        with pytest.raises(SanitizeError):
            sanitize.pool_task(task)

    @pytest.mark.parametrize(
        "item",
        [
            (0, 7, "ok"),
            ("0", 7, "ok", None),
            (0, 7, "done", None),
        ],
    )
    def test_bad_result(self, item):
        with pytest.raises(SanitizeError):
            sanitize.pool_result(item)


def _missing_edge(graph):
    nodes = list(graph.nodes())
    for source in nodes:
        for target in nodes:
            if source != target and not graph.has_edge(source, target):
                return source, target
    raise AssertionError("graph is complete")


class TestPatchHooks:
    def test_healthy_patch_passes(self, armed, graph):
        compiled = compile_graph(graph)
        source, target = _missing_edge(graph)
        graph.add_edge(source, target)
        compiled.patch_edge_insert(source, target)
        assert compiled.version == graph.version

    def test_snapshot_ahead_of_graph_is_flagged(self, armed, graph):
        compiled = compile_graph(graph)
        compiled.version = graph.version + 3
        source, target = _missing_edge(graph)
        graph.add_edge(source, target)
        with pytest.raises(SanitizeError):
            compiled.patch_edge_insert(source, target)

    def test_patch_applied_direct(self, graph):
        compiled = compile_graph(graph)
        sanitize.patch_applied(compiled)
        compiled.version = graph.version + 1
        with pytest.raises(SanitizeError):
            sanitize.patch_applied(compiled)


class TestSharedSnapshotReadOnly:
    def test_edge_patches_rejected_on_attachment(self, graph):
        compiled = compile_graph(graph)
        source, target = _missing_edge(graph)
        with compiled.export_shared() as handle:
            attached = CompiledGraph.attach_shared(handle.descriptor)
            try:
                with pytest.raises(TypeError):
                    attached.patch_edge_insert(source, target)
                with pytest.raises(TypeError):
                    attached.patch_edge_delete(source, target)
            finally:
                attached.shared_handle.close()

    def test_owner_can_still_patch_after_export(self, graph):
        compiled = compile_graph(graph)
        source, target = _missing_edge(graph)
        with compiled.export_shared() as handle:
            attached = CompiledGraph.attach_shared(handle.descriptor)
            try:
                graph.add_edge(source, target)
                compiled.patch_edge_insert(source, target)
                assert compiled.version == graph.version
            finally:
                attached.shared_handle.close()

    def test_attached_executor_repins_on_version_skew(self, graph):
        compiled = compile_graph(graph)
        with compiled.export_shared() as handle:
            attached = CompiledGraph.attach_shared(handle.descriptor)
            try:
                executor = AttachedExecutor(attached)
                ball = executor.descendants_compact(attached, 0, 2)
                assert executor._bits.get((0, 2, True)) is not None
                attached.version += 1
                again = executor.descendants_compact(attached, 0, 2)
                assert executor._pinned_version == attached.version
                assert again == ball
            finally:
                attached.shared_handle.close()


class TestInternedStoreMemo:
    def test_set_distance_invalidates_memo_eagerly(self, graph):
        compiled = compile_graph(graph)
        store = InternedDistanceStore(compiled)
        before = store.descendants_within_bits(compiled, 0, 1)
        assert not before & (1 << 1)
        store.set_distance(0, 1, 1)
        after = store.descendants_within_bits(compiled, 0, 1)
        assert after & (1 << 1)

    def test_version_skew_drops_memo_without_clear_memo(self, graph):
        compiled = compile_graph(graph)
        store = InternedDistanceStore(compiled)
        store.descendants_within_bits(compiled, 0, 2)
        assert len(store._bits_memo)
        compiled.version += 1
        store.rows[0][5] = 1
        store.cols[5][0] = 1
        bits = store.descendants_within_bits(compiled, 0, 2)
        assert bits & (1 << 5)
        assert store._memo_version == compiled.version


class TestArmedEngineRuns:
    def test_full_match_run_raises_no_alarms(self, armed, graph):
        generator = PatternGenerator(graph, seed=3, unbounded_probability=0.2)
        with MatchSession(graph) as session:
            for _ in range(3):
                pattern = generator.generate(4, 4, 3)
                first = session.match(pattern)
                # Second run exercises the result-cache read path.
                assert session.match(pattern) == first
