"""Unit tests for plain graph simulation (repro.matching.simulation)."""

from __future__ import annotations

import pytest

from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph
from repro.graph.pattern import Pattern
from repro.matching.bounded import match
from repro.matching.simulation import graph_simulation, simulates


def traditional_pattern(*edges, labels):
    pattern = Pattern()
    for node, label in labels.items():
        pattern.add_node(node, label)
    for source, target in edges:
        pattern.add_edge(source, target, 1)
    return pattern


class TestGraphSimulation:
    def test_single_edge_pattern(self, chain_graph):
        pattern = traditional_pattern(("u", "v"), labels={"u": "L0", "v": "L1"})
        result = graph_simulation(pattern, chain_graph)
        assert result.matches("u") == {"n0"}
        assert result.matches("v") == {"n1"}

    def test_no_match_when_label_absent(self, chain_graph):
        pattern = traditional_pattern(("u", "v"), labels={"u": "L0", "v": "NOPE"})
        assert graph_simulation(pattern, chain_graph).is_empty

    def test_no_match_when_edge_direction_wrong(self, chain_graph):
        pattern = traditional_pattern(("u", "v"), labels={"u": "L1", "v": "L0"})
        assert graph_simulation(pattern, chain_graph).is_empty

    def test_relation_not_function(self):
        graph = DataGraph()
        graph.add_node("p1", label="P")
        graph.add_node("p2", label="P")
        graph.add_node("c", label="C")
        graph.add_edge("p1", "c")
        graph.add_edge("p2", "c")
        pattern = traditional_pattern(("P", "C"), labels={"P": "P", "C": "C"})
        result = graph_simulation(pattern, graph)
        assert result.matches("P") == {"p1", "p2"}

    def test_cycle_pattern_on_cycle_graph(self):
        graph = DataGraph()
        graph.add_node(0, label="X")
        graph.add_node(1, label="X")
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        pattern = Pattern()
        pattern.add_node("a", "X")
        pattern.add_node("b", "X")
        pattern.add_edge("a", "b", 1)
        pattern.add_edge("b", "a", 1)
        result = graph_simulation(pattern, graph)
        assert result.matches("a") == {0, 1}
        assert result.matches("b") == {0, 1}

    def test_cycle_pattern_on_chain_fails(self, chain_graph):
        pattern = Pattern()
        pattern.add_node("a", "L0")
        pattern.add_node("b", "L1")
        pattern.add_edge("a", "b", 1)
        pattern.add_edge("b", "a", 1)
        assert graph_simulation(pattern, chain_graph).is_empty

    def test_propagated_removal(self):
        """A candidate whose only support is itself removed must also be removed."""
        graph = DataGraph()
        for node, label in [("a1", "A"), ("b1", "B"), ("c1", "C"), ("a2", "A"), ("b2", "B")]:
            graph.add_node(node, label=label)
        graph.add_edge("a1", "b1")
        graph.add_edge("b1", "c1")
        graph.add_edge("a2", "b2")  # b2 has no C successor
        pattern = traditional_pattern(
            ("A", "B"), ("B", "C"), labels={"A": "A", "B": "B", "C": "C"}
        )
        result = graph_simulation(pattern, graph)
        assert result.matches("A") == {"a1"}
        assert result.matches("B") == {"b1"}

    def test_simulates_boolean(self, chain_graph):
        good = traditional_pattern(("u", "v"), labels={"u": "L0", "v": "L1"})
        bad = traditional_pattern(("u", "v"), labels={"u": "L4", "v": "L0"})
        assert simulates(good, chain_graph)
        assert not simulates(bad, chain_graph)

    def test_empty_candidate_early_exit(self, chain_graph):
        pattern = traditional_pattern(labels={"u": "MISSING"})
        assert graph_simulation(pattern, chain_graph).is_empty


class TestAgreementWithBoundedSimulation:
    """Graph simulation is bounded simulation on traditional patterns (Remark 2)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_match_on_traditional_patterns(self, seed):
        graph = random_data_graph(25, 70, num_labels=4, seed=seed)
        labels = [f"L{i}" for i in range(4)]
        import random as _random

        rng = _random.Random(seed)
        pattern = Pattern()
        size = rng.randint(2, 4)
        for index in range(size):
            pattern.add_node(index, rng.choice(labels))
        for index in range(size - 1):
            pattern.add_edge(index, index + 1, 1)
        if size > 2 and rng.random() < 0.5:
            pattern.add_edge(0, size - 1, 1)
        assert graph_simulation(pattern, graph) == match(pattern, graph)
