"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.io import save_graph_json, save_pattern_json
from repro.graph.pattern import Pattern


@pytest.fixture
def graph_file(tmp_path, tiny_graph):
    path = tmp_path / "graph.json"
    save_graph_json(tiny_graph, path)
    return path


@pytest.fixture
def pattern_file(tmp_path):
    pattern = Pattern(name="cli-pattern")
    pattern.add_node("A", "A")
    pattern.add_node("D", "D")
    pattern.add_edge("A", "D", 2)
    path = tmp_path / "pattern.json"
    save_pattern_json(pattern, path)
    return path


@pytest.fixture
def failing_pattern_file(tmp_path):
    pattern = Pattern(name="no-match")
    pattern.add_node("A", "A")
    pattern.add_node("Z", "Z")
    pattern.add_edge("A", "Z", 1)
    path = tmp_path / "failing.json"
    save_pattern_json(pattern, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_arguments(self):
        args = build_parser().parse_args(
            ["match", "--graph", "g.json", "--pattern", "p.json", "--oracle", "bfs"]
        )
        assert args.command == "match"
        assert args.oracle == "bfs"

    def test_experiment_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "not-a-figure"])


class TestMatchCommand:
    def test_text_output(self, graph_file, pattern_file, capsys):
        exit_code = main(["match", "--graph", str(graph_file), "--pattern", str(pattern_file)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "maximum match" in captured
        assert "A -> {a}" in captured

    def test_json_output(self, graph_file, pattern_file, capsys):
        exit_code = main(
            ["match", "--graph", str(graph_file), "--pattern", str(pattern_file), "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"A": ["a"], "D": ["d"]}

    def test_factorised_output(self, graph_file, pattern_file, capsys):
        exit_code = main(
            ["match", "--graph", str(graph_file), "--pattern", str(pattern_file), "--factorised"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "factorised match: 1 assignment tuple(s) (1 x 1)" in captured
        assert "A: 1 candidate(s)" in captured

    def test_factorised_no_match(self, graph_file, failing_pattern_file, capsys):
        exit_code = main(
            [
                "match",
                "--graph",
                str(graph_file),
                "--pattern",
                str(failing_pattern_file),
                "--factorised",
            ]
        )
        assert exit_code == 1
        assert "no match" in capsys.readouterr().out

    def test_no_match_exit_code(self, graph_file, failing_pattern_file, capsys):
        exit_code = main(
            ["match", "--graph", str(graph_file), "--pattern", str(failing_pattern_file)]
        )
        assert exit_code == 1
        assert "no match" in capsys.readouterr().out

    def test_result_graph_flag(self, graph_file, pattern_file, capsys):
        main(
            [
                "match",
                "--graph", str(graph_file),
                "--pattern", str(pattern_file),
                "--result-graph",
            ]
        )
        assert "result graph:" in capsys.readouterr().out

    @pytest.mark.parametrize("oracle", ["compiled", "matrix", "bfs", "2hop"])
    def test_all_oracles(self, graph_file, pattern_file, oracle, capsys):
        exit_code = main(
            [
                "match",
                "--graph", str(graph_file),
                "--pattern", str(pattern_file),
                "--oracle", oracle,
            ]
        )
        assert exit_code == 0


class TestGenerateAndStats:
    @pytest.mark.parametrize(
        "kind,extra",
        [
            ("random", ["--nodes", "30", "--edges", "60"]),
            ("scale-free", ["--nodes", "30", "--edges", "60"]),
            ("small-world", ["--nodes", "30", "--edges", "60"]),
            ("pblog", ["--scale", "0.05"]),
        ],
    )
    def test_generate_kinds(self, tmp_path, kind, extra, capsys):
        out = tmp_path / "generated.json"
        exit_code = main(["generate", "--kind", kind, "--seed", "3", "--out", str(out)] + extra)
        assert exit_code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_stats(self, graph_file, capsys):
        exit_code = main(["stats", str(graph_file)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "|V|: 4" in captured
        assert "|E|: 5" in captured


class TestExperimentCommand:
    def test_single_experiment_runs(self, capsys, monkeypatch):
        # Patch the registry to a fast driver to keep the test quick.
        from repro import experiments as exp_module
        from repro.experiments import dataset_table_experiment

        monkeypatch.setitem(
            exp_module.ALL_EXPERIMENTS, "table-datasets",
            lambda: dataset_table_experiment(scale=0.01),
        )
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module, "ALL_EXPERIMENTS", exp_module.ALL_EXPERIMENTS)
        exit_code = main(["experiment", "table-datasets"])
        assert exit_code == 0
        assert "table-datasets" in capsys.readouterr().out


class TestIncrementalCommand:
    @pytest.fixture
    def updates_file(self, tmp_path):
        path = tmp_path / "updates.json"
        path.write_text(
            json.dumps(
                [
                    {"op": "delete", "source": "b", "target": "d"},
                    {"op": "insert", "source": "b", "target": "d"},
                    {"op": "insert", "source": "a", "target": "d"},
                ]
            )
        )
        return path

    @pytest.mark.parametrize("engine", ["compiled", "legacy"])
    def test_incremental_stream_runs(
        self, graph_file, pattern_file, updates_file, engine, capsys
    ):
        exit_code = main(
            [
                "incremental",
                "--graph", str(graph_file),
                "--pattern", str(pattern_file),
                "--updates", str(updates_file),
                "--engine", engine,
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert f"{engine} engine" in captured
        assert "final match" in captured

    def test_incremental_json_report_with_batches(
        self, graph_file, pattern_file, updates_file, capsys
    ):
        exit_code = main(
            [
                "incremental",
                "--graph", str(graph_file),
                "--pattern", str(pattern_file),
                "--updates", str(updates_file),
                "--batch-size", "2",
                "--json",
            ]
        )
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["engine"] == "compiled"
        assert len(report["batches"]) == 2
        assert report["match_pairs"] > 0

    def test_incremental_bad_updates_file(self, graph_file, pattern_file, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"op": "explode", "source": "a", "target": "b"}]))
        with pytest.raises(SystemExit):
            main(
                [
                    "incremental",
                    "--graph", str(graph_file),
                    "--pattern", str(pattern_file),
                    "--updates", str(bad),
                ]
            )


class TestQueryCommand:
    def test_batch_query_text(self, capsys, graph_file, pattern_file, failing_pattern_file):
        code = main(
            [
                "query",
                "--graph", str(graph_file),
                "--patterns", str(pattern_file), str(failing_pattern_file),
                "--repeat", "2",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # one pattern has no match
        assert "strategy:" in out          # --explain printed the plans
        assert "no match" in out
        assert "cache hits/misses" in out

    def test_batch_query_json(self, capsys, graph_file, pattern_file):
        code = main(
            [
                "query",
                "--graph", str(graph_file),
                "--patterns", str(pattern_file), str(pattern_file),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["patterns"]) == 2
        assert all(row["matched"] for row in payload["patterns"])
        # Identical pattern files share one fingerprint -> computed once.
        assert payload["session"]["cache_entries"] == 1

    def test_serial_matches_forced_fork(self, capsys, graph_file, pattern_file):
        for mode in ("serial", "fork"):
            code = main(
                [
                    "query",
                    "--graph", str(graph_file),
                    "--patterns", str(pattern_file),
                    "--parallel", mode,
                    "--json",
                ]
            )
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["patterns"][0]["match_pairs"] == 2


class TestChaosCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.command == "chaos"
        assert args.seeds == 1 and args.rounds == 2
        assert args.plan is None and args.graph is None

    def test_chaos_text_report(self, capsys):
        code = main(
            [
                "chaos",
                "--nodes", "60", "--edges", "180",
                "--queries", "3",
                "--rounds", "1",
                "--plan", "snapshot.skew@0.5#1,cache.pressure@0.5#1",
                "--no-mutate",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all survived" in out
        assert "parent injections" in out

    def test_chaos_json_matrix(self, capsys):
        code = main(
            [
                "chaos",
                "--nodes", "60", "--edges", "180",
                "--queries", "2",
                "--rounds", "1",
                "--seeds", "2",
                "--plan", "task.corrupt@0.5#1",
                "--no-mutate",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["survived"] is True
        assert [run["seed"] for run in payload["runs"]] == [101, 202]
        assert all(run["survived"] for run in payload["runs"])

    def test_chaos_rejects_bad_plan(self, capsys):
        with pytest.raises(SystemExit, match="unknown fault point"):
            main(["chaos", "--plan", "bogus.point", "--rounds", "1"])
