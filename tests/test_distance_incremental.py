"""Tests for incremental distance-matrix maintenance (UpdateM / UpdateBM)."""

from __future__ import annotations

import random

import pytest

from repro.distance.incremental import (
    EdgeUpdate,
    apply_updates,
    merge_affected,
    update_matrix_batch,
    update_matrix_delete,
    update_matrix_insert,
)
from repro.distance.matrix import DistanceMatrix
from repro.distance.oracle import INF
from repro.exceptions import DistanceOracleError
from repro.graph.generators import random_data_graph


class TestEdgeUpdate:
    def test_constructors_and_flags(self):
        insert = EdgeUpdate.insert(1, 2)
        delete = EdgeUpdate.delete(1, 2)
        assert insert.is_insert and not insert.is_delete
        assert delete.is_delete and not delete.is_insert

    def test_inverse(self):
        assert EdgeUpdate.insert(1, 2).inverse() == EdgeUpdate.delete(1, 2)
        assert EdgeUpdate.delete(1, 2).inverse() == EdgeUpdate.insert(1, 2)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            EdgeUpdate("upsert", 1, 2)


class TestInsert:
    def test_insert_shortens_distances(self, chain_graph):
        matrix = DistanceMatrix(chain_graph)
        affected = update_matrix_insert(matrix, "n4", "n0")
        assert chain_graph.has_edge("n4", "n0")
        assert matrix.distance("n4", "n0") == 1
        assert matrix.distance("n3", "n1") == 3  # n3 -> n4 -> n0 -> n1
        assert ("n4", "n0") in affected
        old, new = affected[("n4", "n0")]
        assert old == INF and new == 1

    def test_insert_existing_edge_is_noop(self, chain_graph):
        matrix = DistanceMatrix(chain_graph)
        assert update_matrix_insert(matrix, "n0", "n1") == {}

    def test_insert_unknown_node_raises(self, chain_graph):
        matrix = DistanceMatrix(chain_graph)
        with pytest.raises(DistanceOracleError):
            update_matrix_insert(matrix, "n0", "ghost")

    def test_affected_pairs_all_decrease(self, random_graph):
        matrix = DistanceMatrix(random_graph)
        nodes = random_graph.node_list()
        rng = random.Random(0)
        source, target = rng.choice(nodes), rng.choice(nodes)
        while source == target or random_graph.has_edge(source, target):
            source, target = rng.choice(nodes), rng.choice(nodes)
        affected = update_matrix_insert(matrix, source, target)
        assert all(new < old for old, new in affected.values())

    def test_matches_full_recompute(self):
        graph = random_data_graph(20, 40, seed=10)
        matrix = DistanceMatrix(graph)
        rng = random.Random(10)
        nodes = graph.node_list()
        for _ in range(10):
            source, target = rng.choice(nodes), rng.choice(nodes)
            if source == target or graph.has_edge(source, target):
                continue
            update_matrix_insert(matrix, source, target)
            assert matrix.equals(DistanceMatrix(graph))


class TestDelete:
    def test_delete_lengthens_distances(self, chain_graph):
        matrix = DistanceMatrix(chain_graph)
        affected = update_matrix_delete(matrix, "n1", "n2")
        assert not chain_graph.has_edge("n1", "n2")
        assert matrix.distance("n0", "n4") == INF
        assert ("n0", "n2") in affected
        assert all(new > old for old, new in affected.values())

    def test_delete_missing_edge_is_noop(self, chain_graph):
        matrix = DistanceMatrix(chain_graph)
        assert update_matrix_delete(matrix, "n2", "n0") == {}

    def test_delete_with_alternative_path_changes_nothing(self, tiny_graph):
        matrix = DistanceMatrix(tiny_graph)
        # a -> b and a -> c -> d both reach d in <= 2; deleting a->b keeps dist(a, d) = 2.
        affected = update_matrix_delete(matrix, "a", "b")
        assert matrix.distance("a", "d") == 2
        assert ("a", "d") not in affected
        assert ("a", "b") in affected

    def test_delete_unknown_node_raises(self, chain_graph):
        matrix = DistanceMatrix(chain_graph)
        with pytest.raises(DistanceOracleError):
            update_matrix_delete(matrix, "ghost", "n0")

    def test_matches_full_recompute(self):
        graph = random_data_graph(20, 60, seed=11)
        matrix = DistanceMatrix(graph)
        rng = random.Random(11)
        for _ in range(15):
            edges = graph.edge_list()
            if not edges:
                break
            source, target = rng.choice(edges)
            update_matrix_delete(matrix, source, target)
            assert matrix.equals(DistanceMatrix(graph))


class TestBatchAndMerge:
    def test_batch_matches_full_recompute(self):
        graph = random_data_graph(25, 70, seed=12)
        matrix = DistanceMatrix(graph)
        rng = random.Random(12)
        nodes = graph.node_list()
        updates = []
        for source, target in rng.sample(graph.edge_list(), 8):
            updates.append(EdgeUpdate.delete(source, target))
        added = set()
        while len(added) < 8:
            source, target = rng.choice(nodes), rng.choice(nodes)
            if source != target and not graph.has_edge(source, target) and (source, target) not in added:
                added.add((source, target))
                updates.append(EdgeUpdate.insert(source, target))
        rng.shuffle(updates)
        affected = update_matrix_batch(matrix, updates)
        assert matrix.equals(DistanceMatrix(graph))
        # Every reported pair really changed relative to a fresh "before" matrix.
        for (source, target), (old, new) in affected.items():
            assert old != new

    def test_merge_affected_nets_out_reverted_pairs(self):
        first = {("a", "b"): (2, 5)}
        second = {("a", "b"): (5, 2), ("c", "d"): (1, 3)}
        merged = merge_affected(first, second)
        assert ("a", "b") not in merged
        assert merged[("c", "d")] == (1, 3)

    def test_merge_affected_keeps_first_old_and_last_new(self):
        first = {("a", "b"): (2, 4)}
        second = {("a", "b"): (4, 7)}
        assert merge_affected(first, second) == {("a", "b"): (2, 7)}

    def test_apply_updates_helper(self, chain_graph):
        apply_updates(
            chain_graph,
            [EdgeUpdate.delete("n0", "n1"), EdgeUpdate.insert("n4", "n0")],
        )
        assert not chain_graph.has_edge("n0", "n1")
        assert chain_graph.has_edge("n4", "n0")

    def test_insert_then_delete_round_trip(self, chain_graph):
        matrix = DistanceMatrix(chain_graph)
        before = matrix.copy()
        update_matrix_insert(matrix, "n4", "n0")
        update_matrix_delete(matrix, "n4", "n0")
        assert matrix.equals(before)
