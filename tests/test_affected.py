"""Unit tests for AffectedArea (repro.matching.affected)."""

from __future__ import annotations

from repro.graph.datagraph import DataGraph
from repro.graph.pattern import Pattern
from repro.matching.affected import AffectedArea


def _small_pattern_and_graph():
    pattern = Pattern()
    pattern.add_node("A", "A")
    pattern.add_node("B", "B")
    pattern.add_edge("A", "B", 2)
    graph = DataGraph()
    graph.add_node("x", label="A")
    graph.add_node("y", label="B")
    graph.add_node("z", label="B")
    graph.add_edge("x", "y")
    graph.add_edge("y", "z")
    return pattern, graph


class TestSizes:
    def test_aff1_and_aff2_sizes(self):
        area = AffectedArea(
            distance_changes={("x", "y"): (1, 2), ("x", "z"): (2, 3)},
            removed_matches={("A", "x")},
            added_matches={("B", "z")},
        )
        assert area.aff1_size == 2
        assert area.aff2_core_size == 2
        assert area.total_size == 4

    def test_empty_area(self):
        area = AffectedArea()
        assert area.aff1_size == 0
        assert area.aff2_core_size == 0
        assert area.total_size == 0

    def test_extended_size_counts_neighbours(self):
        pattern, graph = _small_pattern_and_graph()
        area = AffectedArea(removed_matches={("A", "x")})
        # Pattern side: A and its successor B; data side: x and its successor y.
        assert area.aff2_extended_size(pattern, graph) == 4

    def test_extended_size_handles_unknown_nodes(self):
        pattern, graph = _small_pattern_and_graph()
        area = AffectedArea(added_matches={("GHOST", "nowhere")})
        assert area.aff2_extended_size(pattern, graph) == 2

    def test_summary_keys(self):
        area = AffectedArea(removed_matches={("A", "x")})
        summary = area.summary()
        assert summary["removed"] == 1
        assert summary["added"] == 0
        assert summary["total"] == 1

    def test_repr(self):
        assert "aff1=0" in repr(AffectedArea())


class TestMerge:
    def test_distance_changes_compose(self):
        first = AffectedArea(distance_changes={("a", "b"): (1, 3)})
        second = AffectedArea(distance_changes={("a", "b"): (3, 2), ("c", "d"): (5, 4)})
        merged = first.merge(second)
        assert merged.distance_changes[("a", "b")] == (1, 2)
        assert merged.distance_changes[("c", "d")] == (5, 4)

    def test_distance_change_reverting_drops_out(self):
        first = AffectedArea(distance_changes={("a", "b"): (1, 3)})
        second = AffectedArea(distance_changes={("a", "b"): (3, 1)})
        assert ("a", "b") not in first.merge(second).distance_changes

    def test_removed_then_added_nets_out(self):
        first = AffectedArea(removed_matches={("A", "x")})
        second = AffectedArea(added_matches={("A", "x")})
        merged = first.merge(second)
        assert not merged.removed_matches
        assert not merged.added_matches

    def test_added_then_removed_nets_out(self):
        first = AffectedArea(added_matches={("A", "x")})
        second = AffectedArea(removed_matches={("A", "x")})
        merged = first.merge(second)
        assert not merged.added_matches
        assert not merged.removed_matches

    def test_merge_does_not_mutate_inputs(self):
        first = AffectedArea(removed_matches={("A", "x")})
        second = AffectedArea(added_matches={("B", "y")})
        first.merge(second)
        assert first.added_matches == set()
        assert second.removed_matches == set()
