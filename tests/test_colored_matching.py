"""Tests for colour-aware bounded simulation (repro.matching.colored).

Edge colours model relationship types (Remark (4) of the paper): a coloured
pattern edge must map to a bounded path whose edges all carry the same
colour.
"""

from __future__ import annotations

import random

import pytest

from repro.distance.bfs import BFSDistanceOracle
from repro.exceptions import EdgeNotFoundError
from repro.graph.datagraph import DataGraph
from repro.graph.generators import random_data_graph
from repro.graph.pattern import Pattern
from repro.matching.bounded import match
from repro.matching.colored import (
    build_color_oracles,
    match_colored,
    matches_colored,
    naive_match_colored,
)


@pytest.fixture
def typed_graph() -> DataGraph:
    """Two managers: one supervises via 'works_with', the other only socialises."""
    graph = DataGraph(name="typed")
    graph.add_node("m1", label="M")
    graph.add_node("m2", label="M")
    graph.add_node("e1", label="E")
    graph.add_node("e2", label="E")
    graph.add_node("e3", label="E")
    graph.add_edge("m1", "e1", color="works_with")
    graph.add_edge("e1", "e2", color="works_with")
    graph.add_edge("m2", "e3", color="friends_with")
    graph.add_edge("e3", "e2", color="works_with")
    return graph


def colored_pattern(bound: int = 2, color: str = "works_with") -> Pattern:
    pattern = Pattern(name="typed-pattern")
    pattern.add_node("M", "M")
    pattern.add_node("E", "E")
    pattern.add_edge("M", "E", bound, color=color)
    return pattern


class TestGraphEdgeColors:
    def test_color_round_trip(self, typed_graph):
        assert typed_graph.edge_color("m1", "e1") == "works_with"
        assert typed_graph.edge_color("m2", "e3") == "friends_with"
        assert typed_graph.edge_colors() == {"works_with", "friends_with"}

    def test_uncolored_edge_has_none(self):
        graph = DataGraph()
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(1, 2)
        assert graph.edge_color(1, 2) is None

    def test_missing_edge_raises(self, typed_graph):
        with pytest.raises(EdgeNotFoundError):
            typed_graph.edge_color("e2", "m1")
        with pytest.raises(EdgeNotFoundError):
            typed_graph.set_edge_color("e2", "m1", "x")

    def test_set_and_clear_color(self, typed_graph):
        typed_graph.set_edge_color("m1", "e1", "mentors")
        assert typed_graph.edge_color("m1", "e1") == "mentors"
        typed_graph.set_edge_color("m1", "e1", None)
        assert typed_graph.edge_color("m1", "e1") is None

    def test_colored_subgraph_keeps_all_nodes(self, typed_graph):
        sub = typed_graph.colored_subgraph("works_with")
        assert sub.number_of_nodes() == typed_graph.number_of_nodes()
        assert sub.number_of_edges() == 3
        assert not sub.has_edge("m2", "e3")

    def test_copy_and_subgraph_preserve_colors(self, typed_graph):
        clone = typed_graph.copy()
        assert clone.edge_color("m2", "e3") == "friends_with"
        induced = typed_graph.subgraph({"m1", "e1"})
        assert induced.edge_color("m1", "e1") == "works_with"

    def test_remove_edge_clears_color(self, typed_graph):
        typed_graph.remove_edge("m1", "e1")
        typed_graph.add_edge("m1", "e1")
        assert typed_graph.edge_color("m1", "e1") is None


class TestPatternEdgeColors:
    def test_color_accessors(self):
        pattern = colored_pattern()
        assert pattern.color("M", "E") == "works_with"
        assert pattern.edge_colors() == {"works_with"}
        assert pattern.has_colored_edges()

    def test_uncolored_pattern(self):
        pattern = Pattern()
        pattern.add_node("A")
        pattern.add_node("B")
        pattern.add_edge("A", "B", 2)
        assert pattern.color("A", "B") is None
        assert not pattern.has_colored_edges()

    def test_missing_edge_raises(self):
        pattern = colored_pattern()
        with pytest.raises(EdgeNotFoundError):
            pattern.color("E", "M")

    def test_copy_and_dict_round_trip_preserve_colors(self):
        pattern = colored_pattern()
        assert pattern.copy().color("M", "E") == "works_with"
        restored = Pattern.from_dict(pattern.to_dict())
        assert restored.color("M", "E") == "works_with"


class TestColoredMatching:
    def test_colored_path_required(self, typed_graph):
        """m2 only reaches employees through a 'friends_with' hop, so it fails."""
        result = match_colored(colored_pattern(bound=2), typed_graph)
        assert result.matches("M") == {"m1"}
        # E is a leaf pattern node: every employee remains a match.
        assert result.matches("E") == {"e1", "e2", "e3"}

    def test_uncolored_pattern_ignores_colors(self, typed_graph):
        pattern = Pattern()
        pattern.add_node("M", "M")
        pattern.add_node("E", "E")
        pattern.add_edge("M", "E", 2)
        colored = match_colored(pattern, typed_graph)
        plain = match(pattern, typed_graph)
        assert colored == plain
        assert colored.matches("M") == {"m1", "m2"}

    def test_color_with_no_matching_data_edges(self, typed_graph):
        result = match_colored(colored_pattern(color="reports_to"), typed_graph)
        assert result.is_empty
        assert not matches_colored(colored_pattern(color="reports_to"), typed_graph)

    def test_mixed_colored_and_uncolored_edges(self, typed_graph):
        pattern = Pattern()
        pattern.add_node("M", "M")
        pattern.add_node("E", "E")
        pattern.add_node("E2", "E")
        pattern.add_edge("M", "E", 1, color="friends_with")
        pattern.add_edge("E", "E2", 2)  # uncoloured: any relationship
        result = match_colored(pattern, typed_graph)
        # Only m2 has a direct 'friends_with' edge to an employee; the E node
        # is matched by every employee that reaches another employee within
        # two hops of any relationship type (simulation constraints are
        # directional, so E matches need not be reachable from m2).
        assert result.matches("M") == {"m2"}
        assert result.matches("E") == {"e1", "e3"}

    def test_agrees_with_naive_reference(self, typed_graph):
        for bound in (1, 2, 3):
            pattern = colored_pattern(bound=bound)
            assert match_colored(pattern, typed_graph) == naive_match_colored(
                pattern, typed_graph
            )

    def test_custom_oracle_factory(self, typed_graph):
        pattern = colored_pattern()
        reference = match_colored(pattern, typed_graph)
        via_bfs = match_colored(pattern, typed_graph, oracle_factory=BFSDistanceOracle)
        assert via_bfs == reference

    def test_prebuilt_oracles(self, typed_graph):
        pattern = colored_pattern()
        oracles = build_color_oracles(pattern, typed_graph)
        assert set(oracles) == {None, "works_with"}
        assert match_colored(pattern, typed_graph, oracles) == match_colored(
            pattern, typed_graph
        )

    def test_empty_inputs(self, typed_graph):
        assert match_colored(Pattern(), typed_graph).is_empty
        assert match_colored(colored_pattern(), DataGraph()).is_empty

    @pytest.mark.parametrize("seed", range(5))
    def test_randomised_against_naive(self, seed):
        rng = random.Random(seed)
        graph = random_data_graph(20, 50, num_labels=3, seed=seed)
        colors = ["r", "g", "b"]
        for source, target in graph.edge_list():
            if rng.random() < 0.7:
                graph.set_edge_color(source, target, rng.choice(colors))
        pattern = Pattern()
        labels = [f"L{i}" for i in range(3)]
        for index in range(3):
            pattern.add_node(index, rng.choice(labels))
        pattern.add_edge(0, 1, rng.randint(1, 3), color=rng.choice(colors + [None]))
        pattern.add_edge(1, 2, rng.randint(1, 3), color=rng.choice(colors + [None]))
        assert match_colored(pattern, graph) == naive_match_colored(pattern, graph)

    def test_colored_match_is_subrelation_of_uncolored(self, typed_graph):
        colored = match_colored(colored_pattern(bound=2), typed_graph)
        uncolored_pattern = colored_pattern(bound=2)
        # Strip the colour: same structure, colour constraint removed.
        plain = Pattern()
        plain.add_node("M", "M")
        plain.add_node("E", "E")
        plain.add_edge("M", "E", 2)
        unrestricted = match(plain, typed_graph)
        assert colored.is_subrelation_of(unrestricted)
